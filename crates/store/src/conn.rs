//! The per-connection state machine of the non-blocking daemon —
//! deliberately free of sockets, clocks, and threads so every transition is
//! unit-testable with byte slices.
//!
//! One [`Conn`] owns both directions of a connection:
//!
//! * **Inbound**: bytes arrive in arbitrary chunks ([`Conn::on_bytes`]);
//!   the machine reassembles length-prefixed protocol messages, assigns
//!   each a monotonically increasing sequence number, and hands complete
//!   frames to the caller — but only as fast as the flow-control caps
//!   allow. Messages beyond the caps stay *parked* in the buffer;
//!   [`Conn::take_ready`] releases them as responses complete and the
//!   outbox drains, which is what bounds the outbox by the write budget
//!   even when one socket read carries thousands of tiny requests. A
//!   declared length above the cap is *protocol-fatal* (the stream can
//!   never resynchronize) and poisons the connection.
//! * **Outbound**: responses are pushed by sequence number, in any order
//!   ([`Conn::push_response`]); the outbox releases them strictly in
//!   request order, so pipelining never reorders answers. Writes drain via
//!   [`Conn::next_chunk`] / [`Conn::advance`], which track a partial write
//!   of the front message — the loop always knows whether closing now
//!   would tear a frame.
//! * **Flow control**: [`Conn::wants_read`] goes false while the unwritten
//!   outbox exceeds the write budget (a peer that never drains cannot make
//!   the server buffer grow without bound) or while `max_pipeline`
//!   requests are in flight (a pipelining client cannot flood the worker
//!   pool).
//! * **Teardown**: [`Conn::close_after_flush`] finishes everything queued
//!   then closes (per-connection: BUSY rejections, shutdown responses);
//!   [`Conn::abort_at_boundary`] drops messages not yet started but always
//!   completes a half-written frame (server-wide shutdown) — the peer sees
//!   fewer responses, never a torn one.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// An outbound wire message: owned bytes, or a shared reference into the
/// server's response cache. Sharing is what makes a cached estimate *one*
/// encode per snapshot — every connection writes the same `Arc`'d bytes
/// straight to its socket with no per-connection copy.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A message built for this connection alone.
    Owned(Vec<u8>),
    /// A message shared with other connections (cache hits).
    Shared(Arc<Vec<u8>>),
}

impl Payload {
    /// The message bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(v) => v,
        }
    }

    /// The message length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the message is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::Owned(v)
    }
}

impl From<Arc<Vec<u8>>> for Payload {
    fn from(v: Arc<Vec<u8>>) -> Payload {
        Payload::Shared(v)
    }
}

/// Flow-control and framing limits for one connection.
#[derive(Debug, Clone, Copy)]
pub struct ConnConfig {
    /// Stop reading while more than this many unwritten response bytes are
    /// queued.
    pub write_budget: usize,
    /// Largest acceptable declared message length; larger is fatal.
    pub max_frame: u32,
    /// Stop reading while this many requests are in flight (parsed but not
    /// yet answered).
    pub max_pipeline: usize,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            write_budget: 256 * 1024,
            max_frame: sas_codec::proto::MAX_MESSAGE_LEN,
            max_pipeline: 128,
        }
    }
}

/// Why the connection must be dropped immediately (no recovery, no
/// response — the framing itself is broken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnFatal {
    /// The peer declared a message longer than the cap.
    OversizedFrame {
        /// The declared length.
        declared: u32,
        /// The cap it exceeded.
        cap: u32,
    },
}

impl std::fmt::Display for ConnFatal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnFatal::OversizedFrame { declared, cap } => {
                write!(f, "declared message length {declared} exceeds cap {cap}")
            }
        }
    }
}

/// Lifecycle phase (see module docs for the transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Reading and writing normally.
    Open,
    /// No more reads; flush the entire outbox, then close.
    Draining,
    /// No more reads; finish only the half-written front message, then
    /// close.
    Aborting,
    /// Framing broken; drop without writing another byte.
    Poisoned,
}

/// One complete inbound protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inbound {
    /// The connection-local sequence number (0, 1, 2, …). Responses must
    /// come back under the same number.
    pub seq: u64,
    /// The frame bytes (without the length prefix).
    pub frame: Vec<u8>,
}

/// The per-connection state machine. See the module docs.
#[derive(Debug)]
pub struct Conn {
    config: ConnConfig,
    phase: Phase,

    // Inbound reassembly.
    read_buf: Vec<u8>,
    next_seq: u64,

    // Outbound ordering + drain state.
    in_flight: usize,
    next_flush: u64,
    parked: BTreeMap<u64, Payload>,
    /// In-order messages awaiting the socket, each tagged with the request
    /// sequence it answers (`None`: unsolicited, e.g. a shed BUSY) so the
    /// server can attribute flush completion back to the request.
    outbox: VecDeque<(Option<u64>, Payload)>,
    front_written: usize,
    queued_bytes: usize,
}

impl Conn {
    /// A fresh connection.
    pub fn new(config: ConnConfig) -> Conn {
        Conn {
            config,
            phase: Phase::Open,
            read_buf: Vec::new(),
            next_seq: 0,
            in_flight: 0,
            next_flush: 0,
            parked: BTreeMap::new(),
            outbox: VecDeque::new(),
            front_written: 0,
            queued_bytes: 0,
        }
    }

    // ---- inbound ----------------------------------------------------

    /// Feeds newly received bytes, returning the messages the flow-control
    /// caps admit right now (see [`Conn::take_ready`]). An oversized
    /// declared length poisons the connection.
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Result<Vec<Inbound>, ConnFatal> {
        debug_assert!(
            self.phase == Phase::Open,
            "caller must stop reading once closing"
        );
        self.read_buf.extend_from_slice(bytes);
        self.take_ready()
    }

    /// Parses buffered messages while the caps allow: at most
    /// `max_pipeline` requests in flight, and no new parses while the
    /// outbox is over the write budget. Call again whenever a response
    /// completes or the outbox drains — parked messages release then.
    /// This is the cap that keeps one giant socket read full of tiny
    /// requests from flooding the outbox past the budget.
    pub fn take_ready(&mut self) -> Result<Vec<Inbound>, ConnFatal> {
        if matches!(self.phase, Phase::Aborting | Phase::Poisoned) {
            return Ok(Vec::new());
        }
        let mut complete = Vec::new();
        let mut consumed = 0;
        loop {
            if self.in_flight >= self.config.max_pipeline
                || self.queued_bytes > self.config.write_budget
            {
                break;
            }
            let rest = &self.read_buf[consumed..];
            if rest.len() < 4 {
                break;
            }
            let declared = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
            if declared > self.config.max_frame {
                self.phase = Phase::Poisoned;
                self.read_buf.clear();
                return Err(ConnFatal::OversizedFrame {
                    declared,
                    cap: self.config.max_frame,
                });
            }
            let total = 4 + declared as usize;
            if rest.len() < total {
                break;
            }
            complete.push(Inbound {
                seq: self.next_seq,
                frame: rest[4..total].to_vec(),
            });
            self.next_seq += 1;
            self.in_flight += 1;
            consumed += total;
        }
        self.read_buf.drain(..consumed);
        Ok(complete)
    }

    /// Walks the buffer: complete-but-parked messages, then the incomplete
    /// tail (an unfinishable oversized declaration counts as tail).
    fn scan(&self) -> (usize, usize) {
        let mut off = 0;
        let mut parked = 0;
        loop {
            let rest = &self.read_buf[off..];
            if rest.len() < 4 {
                return (parked, rest.len());
            }
            let declared = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
            if declared > self.config.max_frame {
                return (parked, rest.len());
            }
            let total = 4 + declared as usize;
            if rest.len() < total {
                return (parked, rest.len());
            }
            off += total;
            parked += 1;
        }
    }

    /// Whether a partially received message is sitting past the parked
    /// complete ones — the condition the read (slow-loris) timeout guards.
    pub fn has_partial_frame(&self) -> bool {
        self.scan().1 > 0
    }

    /// Bytes buffered for the partially received message.
    pub fn partial_bytes(&self) -> usize {
        self.scan().1
    }

    /// Complete messages parked in the buffer, waiting for the caps to
    /// free (they surface through [`Conn::take_ready`]).
    pub fn buffered_requests(&self) -> usize {
        self.scan().0
    }

    /// Requests parsed but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The number of requests parsed so far (also the next sequence
    /// number).
    pub fn requests_seen(&self) -> u64 {
        self.next_seq
    }

    // ---- outbound ---------------------------------------------------

    /// Queues the response for request `seq` (a complete length-prefixed
    /// wire message, owned or cache-shared). Responses may arrive in any
    /// order; the outbox releases them in sequence order. Ignored after
    /// abort/poison — the peer is no longer owed anything.
    pub fn push_response(&mut self, seq: u64, message: impl Into<Payload>) {
        if matches!(self.phase, Phase::Aborting | Phase::Poisoned) {
            return;
        }
        debug_assert!(seq >= self.next_flush, "duplicate response for {seq}");
        self.in_flight = self.in_flight.saturating_sub(1);
        self.parked.insert(seq, message.into());
        while let Some(msg) = self.parked.remove(&self.next_flush) {
            self.queued_bytes += msg.len();
            self.outbox.push_back((Some(self.next_flush), msg));
            self.next_flush += 1;
        }
    }

    /// Queues a message that answers no request: the BUSY greeting a shed
    /// connection receives before anything was parsed, or a watch-update
    /// push. Bypasses sequence ordering — an unsolicited frame goes out at
    /// its queueing position, between (never inside) ordered responses.
    pub fn inject_unsolicited(&mut self, message: impl Into<Payload>) {
        if matches!(self.phase, Phase::Aborting | Phase::Poisoned) {
            return;
        }
        let message = message.into();
        self.queued_bytes += message.len();
        self.outbox.push_back((None, message));
    }

    /// The next unwritten slice, if any. Write some prefix of it to the
    /// socket, then call [`Conn::advance`] with the byte count.
    pub fn next_chunk(&self) -> Option<&[u8]> {
        self.outbox
            .front()
            .map(|(_, m)| &m.as_slice()[self.front_written..])
    }

    /// The request sequence the front (currently draining) outbox message
    /// answers; `None` when the outbox is empty or the front message is
    /// unsolicited. The server's stage clock uses this to stamp when a
    /// response's first byte reaches the socket.
    pub fn front_seq(&self) -> Option<u64> {
        self.outbox.front().and_then(|(seq, _)| *seq)
    }

    /// Records `n` bytes of the front message as written. When that
    /// completes the front message, returns the sequence number of the
    /// request it answered (`None` if the message was unsolicited or more
    /// bytes remain) — the hook the server's stage clock uses to stamp
    /// "flushed".
    pub fn advance(&mut self, n: usize) -> Option<u64> {
        self.front_written += n;
        self.queued_bytes -= n;
        let done = self
            .outbox
            .front()
            .map(|(_, m)| self.front_written >= m.len())
            .unwrap_or(false);
        if done {
            let (seq, _) = self.outbox.pop_front().expect("done implies a front");
            self.front_written = 0;
            if self.phase == Phase::Aborting {
                // Frame boundary reached: everything else was already
                // dropped, so the outbox is now empty and the connection
                // is closable.
                debug_assert!(self.outbox.is_empty());
            }
            return seq;
        }
        None
    }

    /// Unwritten response bytes currently held (the backpressure gauge).
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Whether a message is partially written to the socket right now.
    pub fn mid_frame(&self) -> bool {
        self.front_written > 0
    }

    // ---- flow control & lifecycle -----------------------------------

    /// Whether the loop should keep reading from this connection.
    pub fn wants_read(&self) -> bool {
        self.phase == Phase::Open
            && self.queued_bytes <= self.config.write_budget
            && self.in_flight < self.config.max_pipeline
    }

    /// Whether the loop should watch for writability.
    pub fn wants_write(&self) -> bool {
        !self.outbox.is_empty() && self.phase != Phase::Poisoned
    }

    /// Stops reading; the outbox (plus any still-parked responses) drains
    /// completely, then [`Conn::closable`] turns true.
    pub fn close_after_flush(&mut self) {
        if self.phase == Phase::Open {
            self.phase = Phase::Draining;
        }
    }

    /// Server-shutdown teardown: drop every response not yet on the wire,
    /// but always finish a half-written message so the peer never receives
    /// a torn frame. Closable as soon as the boundary is reached.
    pub fn abort_at_boundary(&mut self) {
        match self.phase {
            Phase::Poisoned => return,
            Phase::Open | Phase::Draining | Phase::Aborting => {}
        }
        self.parked.clear();
        if self.front_written > 0 {
            // Keep only the half-written front message.
            let keep = self.outbox.pop_front().expect("mid-frame implies a front");
            self.queued_bytes = keep.1.len() - self.front_written;
            self.outbox.clear();
            self.outbox.push_back(keep);
        } else {
            self.outbox.clear();
            self.queued_bytes = 0;
        }
        self.phase = Phase::Aborting;
    }

    /// Marks the framing as broken; the connection reports closable and
    /// never writes again.
    pub fn poison(&mut self) {
        self.phase = Phase::Poisoned;
        self.parked.clear();
        self.outbox.clear();
        self.queued_bytes = 0;
        self.front_written = 0;
    }

    /// Whether the connection is past reading (draining, aborting, or
    /// poisoned).
    pub fn closing(&self) -> bool {
        self.phase != Phase::Open
    }

    /// Whether the socket can be closed *now* without tearing a frame or
    /// owing the peer queued responses.
    pub fn closable(&self) -> bool {
        match self.phase {
            Phase::Poisoned => true,
            Phase::Open => false,
            Phase::Draining => {
                self.outbox.is_empty()
                    && self.parked.is_empty()
                    && self.in_flight == 0
                    && self.buffered_requests() == 0
            }
            Phase::Aborting => self.outbox.is_empty(),
        }
    }

    /// True when nothing is buffered in either direction and no request is
    /// outstanding — the idle-timeout condition.
    pub fn idle(&self) -> bool {
        self.phase == Phase::Open
            && self.read_buf.is_empty()
            && self.in_flight == 0
            && self.outbox.is_empty()
            && self.parked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: &[u8]) -> Vec<u8> {
        let mut m = (payload.len() as u32).to_le_bytes().to_vec();
        m.extend_from_slice(payload);
        m
    }

    fn conn() -> Conn {
        Conn::new(ConnConfig::default())
    }

    #[test]
    fn parses_one_complete_message() {
        let mut c = conn();
        let got = c.on_bytes(&msg(b"hello")).unwrap();
        assert_eq!(
            got,
            vec![Inbound {
                seq: 0,
                frame: b"hello".to_vec()
            }]
        );
        assert!(!c.has_partial_frame());
        assert_eq!(c.in_flight(), 1);
    }

    #[test]
    fn parses_multiple_messages_in_one_chunk_with_sequential_seqs() {
        let mut c = conn();
        let mut wire = msg(b"a");
        wire.extend(msg(b"bb"));
        wire.extend(msg(b"ccc"));
        let got = c.on_bytes(&wire).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got.iter().map(|i| i.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(got[2].frame, b"ccc");
        assert_eq!(c.in_flight(), 3);
    }

    #[test]
    fn reassembles_message_fed_one_byte_at_a_time() {
        // The slow-loris shape: framing must hold at every split point.
        let mut c = conn();
        let wire = msg(b"slowly");
        for &b in &wire[..wire.len() - 1] {
            assert!(c.on_bytes(&[b]).unwrap().is_empty());
            assert!(c.has_partial_frame());
        }
        let got = c.on_bytes(&wire[wire.len() - 1..]).unwrap();
        assert_eq!(
            got,
            vec![Inbound {
                seq: 0,
                frame: b"slowly".to_vec()
            }]
        );
        assert!(!c.has_partial_frame());
    }

    #[test]
    fn torn_length_prefix_is_held_not_parsed() {
        let mut c = conn();
        assert!(c.on_bytes(&[5, 0]).unwrap().is_empty());
        assert!(c.has_partial_frame());
        assert_eq!(c.partial_bytes(), 2);
        // Completing the prefix and the payload releases the message.
        assert!(c.on_bytes(&[0, 0]).unwrap().is_empty());
        let got = c.on_bytes(b"12345").unwrap();
        assert_eq!(got[0].frame, b"12345");
    }

    #[test]
    fn message_split_across_chunk_boundary() {
        let mut c = conn();
        let mut wire = msg(b"first");
        wire.extend(msg(b"second"));
        let (a, b) = wire.split_at(7); // mid-payload of the first
        assert!(c.on_bytes(a).unwrap().is_empty());
        let got = c.on_bytes(b).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].frame, b"first");
        assert_eq!(got[1].frame, b"second");
    }

    #[test]
    fn zero_length_message_is_a_valid_frame_of_no_bytes() {
        // The codec layer will reject it as a frame; the transport must
        // still deliver it rather than desynchronize.
        let mut c = conn();
        let got = c.on_bytes(&msg(b"")).unwrap();
        assert_eq!(
            got,
            vec![Inbound {
                seq: 0,
                frame: vec![]
            }]
        );
    }

    #[test]
    fn oversized_declared_length_poisons_the_connection() {
        let mut c = Conn::new(ConnConfig {
            max_frame: 1024,
            ..ConnConfig::default()
        });
        let err = c.on_bytes(&2048u32.to_le_bytes()).unwrap_err();
        assert_eq!(
            err,
            ConnFatal::OversizedFrame {
                declared: 2048,
                cap: 1024
            }
        );
        assert!(c.closing());
        assert!(c.closable());
        assert!(!c.wants_read());
        assert!(!c.wants_write());
    }

    #[test]
    fn oversized_length_after_valid_traffic_still_fatal() {
        let mut c = Conn::new(ConnConfig {
            max_frame: 64,
            ..ConnConfig::default()
        });
        assert_eq!(c.on_bytes(&msg(b"ok")).unwrap().len(), 1);
        let mut wire = msg(b"ok2");
        wire.extend(u32::MAX.to_le_bytes());
        assert!(c.on_bytes(&wire).is_err());
        assert!(c.closable());
    }

    #[test]
    fn responses_flush_in_sequence_order_despite_reverse_push() {
        let mut c = conn();
        c.on_bytes(&[msg(b"a"), msg(b"b"), msg(b"c")].concat())
            .unwrap();
        c.push_response(2, msg(b"RC"));
        c.push_response(1, msg(b"RB"));
        assert!(c.next_chunk().is_none(), "seq 0 missing: nothing may flush");
        c.push_response(0, msg(b"RA"));
        let mut out = Vec::new();
        while let Some(chunk) = c.next_chunk() {
            let n = chunk.len();
            out.extend_from_slice(chunk);
            c.advance(n);
        }
        assert_eq!(out, [msg(b"RA"), msg(b"RB"), msg(b"RC")].concat());
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn gap_blocks_later_responses_until_filled() {
        let mut c = conn();
        c.on_bytes(&[msg(b"a"), msg(b"b")].concat()).unwrap();
        c.push_response(1, msg(b"second"));
        assert!(c.next_chunk().is_none());
        assert_eq!(c.queued_bytes(), 0, "parked responses are not queued yet");
        c.push_response(0, msg(b"first"));
        assert_eq!(c.queued_bytes(), msg(b"first").len() + msg(b"second").len());
    }

    #[test]
    fn partial_writes_tracked_across_advance_calls() {
        let mut c = conn();
        c.on_bytes(&msg(b"q")).unwrap();
        let resp = msg(b"a-long-response");
        c.push_response(0, resp.clone());
        assert_eq!(c.queued_bytes(), resp.len());
        let first = c.next_chunk().unwrap().to_vec();
        assert_eq!(first, resp);
        c.advance(3);
        assert!(c.mid_frame());
        assert_eq!(c.queued_bytes(), resp.len() - 3);
        assert_eq!(c.next_chunk().unwrap(), &resp[3..]);
        c.advance(resp.len() - 3);
        assert!(!c.mid_frame());
        assert!(c.next_chunk().is_none());
        assert_eq!(c.queued_bytes(), 0);
    }

    #[test]
    fn backpressure_pauses_reads_until_drained() {
        let mut c = Conn::new(ConnConfig {
            write_budget: 10,
            ..ConnConfig::default()
        });
        c.on_bytes(&msg(b"q")).unwrap();
        assert!(c.wants_read());
        c.push_response(0, msg(b"12345678901234567890"));
        assert!(!c.wants_read(), "over budget: reads pause");
        assert!(c.wants_write());
        let n = c.next_chunk().unwrap().len();
        c.advance(n);
        assert!(c.wants_read(), "drained: reads resume");
    }

    #[test]
    fn max_pipeline_pauses_reads_until_responses_complete() {
        let mut c = Conn::new(ConnConfig {
            max_pipeline: 2,
            ..ConnConfig::default()
        });
        c.on_bytes(&[msg(b"a"), msg(b"b")].concat()).unwrap();
        assert_eq!(c.in_flight(), 2);
        assert!(!c.wants_read(), "pipeline full");
        c.push_response(0, msg(b"ra"));
        assert_eq!(c.in_flight(), 1);
        assert!(c.wants_read(), "a completion frees a slot");
    }

    #[test]
    fn close_after_flush_waits_for_parked_and_queued() {
        let mut c = conn();
        c.on_bytes(&[msg(b"a"), msg(b"b")].concat()).unwrap();
        c.push_response(1, msg(b"rb"));
        c.close_after_flush();
        assert!(c.closing());
        assert!(!c.closable(), "seq 0 still owed");
        c.push_response(0, msg(b"ra"));
        assert!(!c.closable(), "outbox not drained");
        while let Some(chunk) = c.next_chunk() {
            let n = chunk.len();
            c.advance(n);
        }
        assert!(c.closable());
    }

    #[test]
    fn abort_with_nothing_written_is_immediately_closable() {
        let mut c = conn();
        c.on_bytes(&msg(b"q")).unwrap();
        c.push_response(0, msg(b"never-sent"));
        c.abort_at_boundary();
        assert!(c.closable(), "no bytes on the wire: drop everything");
        assert_eq!(c.queued_bytes(), 0);
        assert!(!c.wants_write());
    }

    #[test]
    fn abort_mid_frame_finishes_exactly_that_frame() {
        let mut c = conn();
        c.on_bytes(&[msg(b"a"), msg(b"b")].concat()).unwrap();
        let r0 = msg(b"response-zero");
        c.push_response(0, r0.clone());
        c.push_response(1, msg(b"response-one"));
        c.advance(5); // half of r0 is on the wire
        c.abort_at_boundary();
        assert!(!c.closable(), "must finish the torn frame first");
        assert!(c.wants_write());
        let rest = c.next_chunk().unwrap().to_vec();
        assert_eq!(rest, &r0[5..], "only the rest of r0, response-one dropped");
        c.advance(rest.len());
        assert!(c.closable());
        assert!(!c.wants_write());
    }

    #[test]
    fn abort_drops_parked_responses() {
        let mut c = conn();
        c.on_bytes(&[msg(b"a"), msg(b"b")].concat()).unwrap();
        c.push_response(1, msg(b"parked"));
        c.abort_at_boundary();
        assert!(c.closable());
        // A straggler completion after abort is ignored, not queued.
        c.push_response(0, msg(b"late"));
        assert!(c.next_chunk().is_none());
        assert!(c.closable());
    }

    #[test]
    fn abort_during_drain_keeps_boundary_guarantee() {
        let mut c = conn();
        c.on_bytes(&msg(b"a")).unwrap();
        let r = msg(b"0123456789");
        c.push_response(0, r.clone());
        c.close_after_flush();
        c.advance(4);
        c.abort_at_boundary();
        assert!(!c.closable());
        assert_eq!(c.next_chunk().unwrap(), &r[4..]);
    }

    #[test]
    fn idle_reflects_all_buffers() {
        let mut c = conn();
        assert!(c.idle());
        c.on_bytes(&[1, 0]).unwrap();
        assert!(!c.idle(), "partial frame pending");
        c.on_bytes(&[0, 0, 9]).unwrap();
        assert!(!c.idle(), "request in flight");
        c.push_response(0, msg(b"r"));
        assert!(!c.idle(), "response queued");
        let n = c.next_chunk().unwrap().len();
        c.advance(n);
        assert!(c.idle());
    }

    #[test]
    fn requests_seen_counts_across_chunks() {
        let mut c = conn();
        c.on_bytes(&msg(b"a")).unwrap();
        c.on_bytes(&[msg(b"b"), msg(b"c")].concat()).unwrap();
        assert_eq!(c.requests_seen(), 3);
    }

    #[test]
    fn poison_discards_everything() {
        let mut c = conn();
        c.on_bytes(&msg(b"a")).unwrap();
        c.push_response(0, msg(b"r"));
        c.advance(2);
        c.poison();
        assert!(c.closable());
        assert!(!c.wants_write());
        assert_eq!(c.queued_bytes(), 0);
        c.push_response(0, msg(b"late"));
        assert!(c.next_chunk().is_none());
    }

    #[test]
    fn draining_conn_reports_not_idle() {
        let mut c = conn();
        c.close_after_flush();
        assert!(!c.idle(), "closing is not idle");
        assert!(c.closable());
    }

    #[test]
    fn wants_read_false_once_closing() {
        let mut c = conn();
        assert!(c.wants_read());
        c.close_after_flush();
        assert!(!c.wants_read());
    }

    #[test]
    fn draining_waits_for_in_flight_requests() {
        // A request still in a worker when the close begins must be
        // answered before the connection may close.
        let mut c = conn();
        c.on_bytes(&msg(b"q")).unwrap();
        c.close_after_flush();
        assert!(!c.closable(), "request still in flight");
        c.push_response(0, msg(b"r"));
        assert!(!c.closable(), "response not yet written");
        let n = c.next_chunk().unwrap().len();
        c.advance(n);
        assert!(c.closable());
    }

    #[test]
    fn unsolicited_message_flushes_then_closes() {
        // The shed path: BUSY without any parsed request.
        let mut c = conn();
        let busy = msg(b"BUSY");
        c.inject_unsolicited(busy.clone());
        c.close_after_flush();
        assert!(c.wants_write());
        assert!(!c.closable());
        let n = c.next_chunk().unwrap().len();
        assert_eq!(c.next_chunk().unwrap(), busy.as_slice());
        c.advance(n);
        assert!(c.closable());
    }

    #[test]
    fn parsing_parks_at_the_pipeline_cap_and_resumes() {
        let mut c = Conn::new(ConnConfig {
            max_pipeline: 2,
            ..ConnConfig::default()
        });
        let wire = [msg(b"a"), msg(b"b"), msg(b"c"), msg(b"d"), msg(b"e")].concat();
        let got = c.on_bytes(&wire).unwrap();
        assert_eq!(got.len(), 2, "only the cap's worth is admitted");
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.buffered_requests(), 3);
        assert!(!c.has_partial_frame(), "parked messages are not a partial");
        // A completed response frees one slot; exactly one parks out.
        c.push_response(0, msg(b"ra"));
        let more = c.take_ready().unwrap();
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].seq, 2);
        assert_eq!(more[0].frame, b"c");
        assert_eq!(c.buffered_requests(), 2);
    }

    #[test]
    fn parsing_parks_while_over_the_write_budget() {
        let mut c = Conn::new(ConnConfig {
            write_budget: 10,
            ..ConnConfig::default()
        });
        c.on_bytes(&msg(b"q")).unwrap();
        c.push_response(0, msg(b"a-response-past-the-budget"));
        assert!(c.queued_bytes() > 10);
        // New arrivals park rather than inflate the outbox further.
        let got = c.on_bytes(&[msg(b"x"), msg(b"y")].concat()).unwrap();
        assert!(got.is_empty());
        assert_eq!(c.buffered_requests(), 2);
        // Draining the outbox releases them.
        let n = c.next_chunk().unwrap().len();
        c.advance(n);
        assert_eq!(c.take_ready().unwrap().len(), 2);
        assert_eq!(c.buffered_requests(), 0);
    }

    #[test]
    fn partial_tail_is_seen_through_parked_messages() {
        let mut c = Conn::new(ConnConfig {
            max_pipeline: 1,
            ..ConnConfig::default()
        });
        let mut wire = [msg(b"a"), msg(b"b")].concat();
        wire.extend_from_slice(&[9, 0]); // torn prefix after two messages
        assert_eq!(c.on_bytes(&wire).unwrap().len(), 1);
        assert_eq!(c.buffered_requests(), 1);
        assert!(c.has_partial_frame());
        assert_eq!(c.partial_bytes(), 2);
    }

    #[test]
    fn draining_waits_for_parked_messages() {
        // A shutdown request with pipelined requests parked behind it:
        // they are owed answers before the connection may close.
        let mut c = Conn::new(ConnConfig {
            max_pipeline: 1,
            ..ConnConfig::default()
        });
        assert_eq!(
            c.on_bytes(&[msg(b"a"), msg(b"b")].concat()).unwrap().len(),
            1
        );
        c.close_after_flush();
        c.push_response(0, msg(b"ra"));
        let n = c.next_chunk().unwrap().len();
        c.advance(n);
        assert!(!c.closable(), "a parked request is still owed an answer");
        let rest = c.take_ready().unwrap();
        assert_eq!(rest.len(), 1);
        c.push_response(1, msg(b"rb"));
        let n = c.next_chunk().unwrap().len();
        c.advance(n);
        assert!(c.closable());
    }

    #[test]
    fn take_ready_yields_nothing_after_abort_or_poison() {
        let mut c = Conn::new(ConnConfig {
            max_pipeline: 1,
            ..ConnConfig::default()
        });
        assert_eq!(
            c.on_bytes(&[msg(b"a"), msg(b"b")].concat()).unwrap().len(),
            1
        );
        c.abort_at_boundary();
        assert!(c.take_ready().unwrap().is_empty());
        assert!(c.closable(), "parked messages are forfeit on abort");
    }

    #[test]
    fn shared_payload_flushes_like_owned_and_counts_toward_budget() {
        let shared = Arc::new(msg(b"cached-estimate"));
        let mut a = conn();
        let mut b = conn();
        a.on_bytes(&msg(b"q")).unwrap();
        b.on_bytes(&msg(b"q")).unwrap();
        a.push_response(0, shared.clone());
        b.push_response(0, msg(b"cached-estimate"));
        assert_eq!(a.queued_bytes(), b.queued_bytes());
        // Partial writes work identically on the shared front message.
        assert_eq!(a.next_chunk().unwrap(), b.next_chunk().unwrap());
        a.advance(4);
        b.advance(4);
        assert_eq!(a.next_chunk().unwrap(), b.next_chunk().unwrap());
        a.advance(a.next_chunk().unwrap().len());
        assert!(a.next_chunk().is_none());
        assert_eq!(a.queued_bytes(), 0);
        // The connection never cloned the bytes: the cache and this test
        // still hold the only other references.
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    fn abort_mid_frame_finishes_a_shared_frame_too() {
        let shared = Arc::new(msg(b"shared-response"));
        let mut c = conn();
        c.on_bytes(&[msg(b"a"), msg(b"b")].concat()).unwrap();
        c.push_response(0, shared.clone());
        c.push_response(1, msg(b"dropped"));
        c.advance(5);
        c.abort_at_boundary();
        assert!(!c.closable());
        let rest = c.next_chunk().unwrap().to_vec();
        assert_eq!(rest, &shared[5..]);
        c.advance(rest.len());
        assert!(c.closable());
    }

    #[test]
    fn exact_budget_boundary_still_reads() {
        // The budget is inclusive: pausing starts strictly above it.
        let mut c = Conn::new(ConnConfig {
            write_budget: 9,
            ..ConnConfig::default()
        });
        c.on_bytes(&msg(b"q")).unwrap();
        c.push_response(0, msg(b"12345")); // 4 + 5 = 9 bytes queued
        assert_eq!(c.queued_bytes(), 9);
        assert!(c.wants_read());
    }
}
