//! Request/response messages for the `sas serve` protocol.
//!
//! Every message is a `sas-codec` frame (tags in [`sas_codec::proto`]) sent
//! length-prefixed over TCP. Frames keep the codec's robustness contract:
//! decoding a hostile message never panics and never allocates beyond the
//! message cap. Responses to different requests have different body
//! layouts, so decoding a response requires naming the request it answers
//! ([`decode_response`]).

use sas_codec::{encode_frame, open_frame, proto, CodecError, Reader, Writer};
use sas_obs::{HistogramSnapshot, MetricsReport};
use sas_summaries::{Estimate, Query, SummaryKind};

use crate::policy::{Coverage, Policy};
use crate::window::{Level, WindowKey};

/// A client→daemon request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Estimate the weight in `range` for a dataset series, optionally
    /// restricted to windows overlapping `time`.
    Query {
        /// Dataset name.
        dataset: String,
        /// Series kind.
        kind: SummaryKind,
        /// One `(lo, hi)` per axis.
        range: Vec<(u64, u64)>,
        /// Optional closed tick interval filtering windows.
        time: Option<(u64, u64)>,
    },
    /// Estimate a [`Query`] for a dataset series with error bounds,
    /// optionally restricted to windows overlapping `time`. The newer,
    /// richer sibling of [`Request::Query`] (which stays answered for
    /// compatibility).
    Estimate {
        /// Dataset name.
        dataset: String,
        /// Series kind.
        kind: SummaryKind,
        /// The query.
        query: Query,
        /// Confidence for the returned interval.
        confidence: f64,
        /// Optional closed tick interval filtering windows.
        time: Option<(u64, u64)>,
    },
    /// [`Request::Estimate`] with a gap report: the answer additionally
    /// names which stretches of the requested span were missing or expired
    /// by retention. Same body layout as the plain estimate under its own
    /// tag; the plain tags stay answered bit-identically.
    EstimateCov {
        /// Dataset name.
        dataset: String,
        /// Series kind.
        kind: SummaryKind,
        /// The query.
        query: Query,
        /// Confidence for the returned interval.
        confidence: f64,
        /// Optional closed tick interval filtering windows.
        time: Option<(u64, u64)>,
    },
    /// Register a live subscription for a canonical query on this
    /// connection. Acknowledged with a watch id; afterwards every sealed
    /// ingest batch touching the series triggers an unsolicited
    /// [`WatchUpdate`] push frame on the connection.
    Watch {
        /// Dataset name.
        dataset: String,
        /// Series kind.
        kind: SummaryKind,
        /// The query.
        query: Query,
        /// Confidence for pushed intervals.
        confidence: f64,
        /// Optional closed tick interval filtering windows.
        time: Option<(u64, u64)>,
    },
    /// Install (or clear, when the policy is empty) a dataset's lifecycle
    /// policy.
    PolicySet {
        /// Dataset name.
        dataset: String,
        /// The policy to install.
        policy: Policy,
    },
    /// Read back installed lifecycle policies, optionally for one dataset.
    PolicyShow {
        /// Restrict to one dataset (`None` lists all).
        dataset: Option<String>,
    },
    /// Merge a batch summary (a complete summary frame) into the minute
    /// window containing `ts`.
    Ingest {
        /// Dataset name.
        dataset: String,
        /// Batch timestamp (ticks).
        ts: u64,
        /// Encoded summary frame.
        frame: Vec<u8>,
    },
    /// List the catalog's windows.
    List,
    /// Store statistics.
    Stats,
    /// Liveness probe, answered from the daemon's event loop without
    /// touching the store — measures loop responsiveness even while every
    /// worker is busy.
    Ping,
    /// Snapshot the daemon's metrics registry: every counter and latency
    /// histogram (event loop, per-stage request timing, catalog).
    Metrics,
    /// Stop the daemon after draining in-flight connections.
    Shutdown,
}

/// One row of a [`Response::List`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// The window's catalog coordinate.
    pub key: WindowKey,
    /// Stored elements in the window summary.
    pub items: u64,
    /// Batches merged into the window.
    pub batches: u64,
    /// Frame file size in bytes.
    pub frame_bytes: u64,
}

/// A daemon→client response. `Err` can answer any request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Query {
        /// The estimate.
        value: f64,
        /// Windows consulted.
        windows: u64,
        /// Whether the answer came from the LRU cache.
        cached: bool,
    },
    /// Answer to [`Request::Estimate`]: the estimate with its bounds.
    Estimate {
        /// The estimate.
        estimate: Estimate,
        /// Windows consulted.
        windows: u64,
        /// Whether the answer came from the LRU cache.
        cached: bool,
    },
    /// Answer to [`Request::EstimateCov`]: the estimate plus its gap
    /// report.
    EstimateCov {
        /// The estimate.
        estimate: Estimate,
        /// Windows consulted.
        windows: u64,
        /// Whether the answer came from the LRU cache.
        cached: bool,
        /// Which parts of the requested span had no data, and why.
        coverage: Coverage,
    },
    /// Answer to [`Request::Watch`]: the subscription is registered.
    Watch {
        /// Daemon-assigned watch id, echoed by every push for it.
        watch_id: u64,
    },
    /// Answer to [`Request::PolicySet`]: the policy is persisted.
    PolicySet,
    /// Answer to [`Request::PolicyShow`]: `(dataset, policy)` rows in
    /// dataset order.
    Policies(Vec<(String, Policy)>),
    /// Answer to [`Request::Ingest`]: where the batch landed.
    Ingest {
        /// Window level (always minute today).
        level: Level,
        /// Window start tick.
        start: u64,
        /// Items now in the window summary.
        items: u64,
    },
    /// Answer to [`Request::List`].
    List(Vec<WindowRow>),
    /// Answer to [`Request::Stats`]: name/value pairs in the daemon's
    /// fixed emission order ([`crate::Store::stats`]'s hand-written list —
    /// stable across calls within one build, but *not* sorted and not
    /// guaranteed stable across versions). Display layers that want
    /// diffable output must sort by name themselves, as `sas client stats`
    /// does.
    Stats(Vec<(String, u64)>),
    /// Answer to [`Request::Metrics`]: the full registry snapshot, sorted
    /// by metric name.
    Metrics(MetricsReport),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Shutdown`].
    Shutdown,
    /// Any request can fail with a message.
    Err(String),
    /// Any request can be load-shed with a reason (connection limit,
    /// per-dataset admission control). Unlike [`Response::Err`] this is
    /// not the request's fault: retrying later is reasonable.
    Busy(String),
}

/// Encodes a request frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Query {
            dataset,
            kind,
            range,
            time,
        } => encode_frame(proto::REQ_QUERY, |w| {
            w.section(1, |w| {
                w.put_str(dataset);
                w.put_u16(kind.tag());
                put_time(w, *time);
            });
            w.section(2, |w| {
                w.put_u64(range.len() as u64);
                for &(lo, hi) in range {
                    w.put_u64(lo);
                    w.put_u64(hi);
                }
            });
        }),
        Request::Estimate {
            dataset,
            kind,
            query,
            confidence,
            time,
        } => encode_estimate_shape(
            proto::REQ_ESTIMATE,
            dataset,
            *kind,
            query,
            *confidence,
            *time,
        ),
        Request::EstimateCov {
            dataset,
            kind,
            query,
            confidence,
            time,
        } => encode_estimate_shape(
            proto::REQ_ESTIMATE_COV,
            dataset,
            *kind,
            query,
            *confidence,
            *time,
        ),
        Request::Watch {
            dataset,
            kind,
            query,
            confidence,
            time,
        } => encode_estimate_shape(proto::REQ_WATCH, dataset, *kind, query, *confidence, *time),
        Request::PolicySet { dataset, policy } => encode_frame(proto::REQ_POLICY_SET, |w| {
            w.section(1, |w| w.put_str(dataset));
            w.section(2, |w| policy.write_wire(w));
        }),
        Request::PolicyShow { dataset } => encode_frame(proto::REQ_POLICY_SHOW, |w| {
            w.section(1, |w| match dataset {
                Some(d) => {
                    w.put_u8(1);
                    w.put_str(d);
                }
                None => w.put_u8(0),
            });
        }),
        Request::Ingest { dataset, ts, frame } => encode_frame(proto::REQ_INGEST, |w| {
            w.section(1, |w| {
                w.put_str(dataset);
                w.put_u64(*ts);
            });
            w.section(2, |w| w.put_bytes(frame));
        }),
        Request::List => encode_frame(proto::REQ_LIST, |_| {}),
        Request::Stats => encode_frame(proto::REQ_STATS, |_| {}),
        Request::Ping => encode_frame(proto::REQ_PING, |_| {}),
        Request::Metrics => encode_frame(proto::REQ_METRICS, |_| {}),
        Request::Shutdown => encode_frame(proto::REQ_SHUTDOWN, |_| {}),
    }
}

/// Decodes a request frame (the daemon's half).
pub fn decode_request(bytes: &[u8]) -> Result<Request, CodecError> {
    let mut frame = open_frame(bytes)?;
    let req = match frame.kind {
        proto::REQ_QUERY => {
            let mut meta = frame.body.expect_section(1)?;
            let dataset = meta.get_str()?;
            let tag = meta.get_u16()?;
            let kind = SummaryKind::from_tag(tag).ok_or(CodecError::UnknownKind(tag))?;
            let time = get_time(&mut meta)?;
            meta.finish()?;
            let mut axes = frame.body.expect_section(2)?;
            let n = axes.get_len(16)?;
            let mut range = Vec::with_capacity(n);
            for _ in 0..n {
                let lo = axes.get_u64()?;
                let hi = axes.get_u64()?;
                if lo > hi {
                    return Err(CodecError::Invalid(format!("empty range {lo}..{hi}")));
                }
                range.push((lo, hi));
            }
            axes.finish()?;
            Request::Query {
                dataset,
                kind,
                range,
                time,
            }
        }
        proto::REQ_ESTIMATE => {
            let (dataset, kind, query, confidence, time) = read_estimate_shape(&mut frame.body)?;
            Request::Estimate {
                dataset,
                kind,
                query,
                confidence,
                time,
            }
        }
        proto::REQ_ESTIMATE_COV => {
            let (dataset, kind, query, confidence, time) = read_estimate_shape(&mut frame.body)?;
            Request::EstimateCov {
                dataset,
                kind,
                query,
                confidence,
                time,
            }
        }
        proto::REQ_WATCH => {
            let (dataset, kind, query, confidence, time) = read_estimate_shape(&mut frame.body)?;
            Request::Watch {
                dataset,
                kind,
                query,
                confidence,
                time,
            }
        }
        proto::REQ_POLICY_SET => {
            let mut sec = frame.body.expect_section(1)?;
            let dataset = sec.get_str()?;
            sec.finish()?;
            let mut sec = frame.body.expect_section(2)?;
            let policy = Policy::read_wire(&mut sec)?;
            sec.finish()?;
            Request::PolicySet { dataset, policy }
        }
        proto::REQ_POLICY_SHOW => {
            let mut sec = frame.body.expect_section(1)?;
            let dataset = match sec.get_u8()? {
                0 => None,
                1 => Some(sec.get_str()?),
                other => {
                    return Err(CodecError::Invalid(format!(
                        "bad dataset-filter flag {other}"
                    )))
                }
            };
            sec.finish()?;
            Request::PolicyShow { dataset }
        }
        proto::REQ_INGEST => {
            let mut meta = frame.body.expect_section(1)?;
            let dataset = meta.get_str()?;
            let ts = meta.get_u64()?;
            meta.finish()?;
            let mut body = frame.body.expect_section(2)?;
            let frame_bytes = body.get_bytes(body.remaining())?.to_vec();
            Request::Ingest {
                dataset,
                ts,
                frame: frame_bytes,
            }
        }
        proto::REQ_LIST => Request::List,
        proto::REQ_STATS => Request::Stats,
        proto::REQ_PING => Request::Ping,
        proto::REQ_METRICS => Request::Metrics,
        proto::REQ_SHUTDOWN => Request::Shutdown,
        other => return Err(CodecError::UnknownKind(other)),
    };
    frame.body.finish()?;
    Ok(req)
}

/// Encodes a response frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Err(msg) => encode_frame(proto::RESP_ERR, |w| {
            w.section(1, |w| w.put_str(msg));
        }),
        Response::Query {
            value,
            windows,
            cached,
        } => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| {
                w.put_f64(*value);
                w.put_u64(*windows);
                w.put_u8(*cached as u8);
            });
        }),
        Response::Estimate {
            estimate,
            windows,
            cached,
        } => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| {
                w.put_u64(*windows);
                w.put_u8(*cached as u8);
            });
            // The estimate travels as its own section (the same body
            // layout as a standalone TAG_ESTIMATE frame).
            estimate.write_wire(w);
        }),
        Response::EstimateCov {
            estimate,
            windows,
            cached,
            coverage,
        } => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| {
                w.put_u64(*windows);
                w.put_u8(*cached as u8);
            });
            estimate.write_wire(w);
            w.section(3, |w| coverage.write_wire(w));
        }),
        Response::Watch { watch_id } => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| w.put_u64(*watch_id));
        }),
        Response::PolicySet => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |_| {});
        }),
        Response::Policies(rows) => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| {
                w.put_u64(rows.len() as u64);
                for (dataset, policy) in rows {
                    w.put_str(dataset);
                    policy.write_wire(w);
                }
            });
        }),
        Response::Ingest {
            level,
            start,
            items,
        } => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| {
                w.put_u8(level.tag());
                w.put_u64(*start);
                w.put_u64(*items);
            });
        }),
        Response::List(rows) => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| {
                w.put_u64(rows.len() as u64);
                for r in rows {
                    w.put_str(&r.key.dataset);
                    w.put_u16(r.key.kind.tag());
                    w.put_u8(r.key.level.tag());
                    w.put_u64(r.key.start);
                    w.put_u64(r.items);
                    w.put_u64(r.batches);
                    w.put_u64(r.frame_bytes);
                }
            });
        }),
        Response::Stats(pairs) => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| {
                w.put_u64(pairs.len() as u64);
                for (name, value) in pairs {
                    w.put_str(name);
                    w.put_u64(*value);
                }
            });
        }),
        Response::Metrics(report) => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |w| {
                w.put_u64(report.counters.len() as u64);
                for (name, value) in &report.counters {
                    w.put_str(name);
                    w.put_u64(*value);
                }
            });
            // Histograms travel sparse: only nonzero buckets, as sorted
            // (index, count) pairs, exactly the snapshot representation.
            w.section(2, |w| {
                w.put_u64(report.histograms.len() as u64);
                for (name, h) in &report.histograms {
                    w.put_str(name);
                    w.put_u64(h.count);
                    w.put_u64(h.sum);
                    w.put_u64(h.min);
                    w.put_u64(h.max);
                    w.put_u64(h.buckets.len() as u64);
                    for &(i, n) in &h.buckets {
                        w.put_u32(i);
                        w.put_u64(n);
                    }
                }
            });
        }),
        Response::Pong => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |_| {});
        }),
        Response::Shutdown => encode_frame(proto::RESP_OK, |w| {
            w.section(1, |_| {});
        }),
        Response::Busy(msg) => encode_frame(proto::RESP_BUSY, |w| {
            w.section(1, |w| w.put_str(msg));
        }),
    }
}

/// Decodes the response to a request of kind `request_tag` (the client's
/// half; OK-response layouts differ per request).
pub fn decode_response(bytes: &[u8], request_tag: u16) -> Result<Response, CodecError> {
    let mut frame = open_frame(bytes)?;
    if frame.kind == proto::RESP_ERR || frame.kind == proto::RESP_BUSY {
        let mut sec = frame.body.expect_section(1)?;
        let msg = sec.get_str()?;
        sec.finish()?;
        frame.body.finish()?;
        return Ok(if frame.kind == proto::RESP_ERR {
            Response::Err(msg)
        } else {
            Response::Busy(msg)
        });
    }
    if frame.kind != proto::RESP_OK {
        return Err(CodecError::UnknownKind(frame.kind));
    }
    let mut sec = frame.body.expect_section(1)?;
    let resp = match request_tag {
        proto::REQ_QUERY => Response::Query {
            value: sec.get_f64()?,
            windows: sec.get_u64()?,
            cached: sec.get_u8()? != 0,
        },
        proto::REQ_ESTIMATE => {
            let windows = sec.get_u64()?;
            let cached = sec.get_u8()? != 0;
            sec.finish()?;
            let estimate = Estimate::read_wire(&mut frame.body)?;
            frame.body.finish()?;
            return Ok(Response::Estimate {
                estimate,
                windows,
                cached,
            });
        }
        proto::REQ_ESTIMATE_COV => {
            let windows = sec.get_u64()?;
            let cached = sec.get_u8()? != 0;
            sec.finish()?;
            let estimate = Estimate::read_wire(&mut frame.body)?;
            let mut cov = frame.body.expect_section(3)?;
            let coverage = Coverage::read_wire(&mut cov)?;
            cov.finish()?;
            frame.body.finish()?;
            return Ok(Response::EstimateCov {
                estimate,
                windows,
                cached,
                coverage,
            });
        }
        proto::REQ_WATCH => Response::Watch {
            watch_id: sec.get_u64()?,
        },
        proto::REQ_POLICY_SET => Response::PolicySet,
        proto::REQ_POLICY_SHOW => {
            // Smallest row: 1-byte dataset + two option flags + empty map.
            let n = sec.get_len(8 + 1 + 1 + 1 + 8)?;
            let mut rows = Vec::with_capacity(n);
            let mut prev: Option<String> = None;
            for _ in 0..n {
                let dataset = sec.get_str()?;
                if prev.as_deref().is_some_and(|p| p >= dataset.as_str()) {
                    return Err(CodecError::Invalid("policy rows out of order".into()));
                }
                let policy = Policy::read_wire(&mut sec)?;
                prev = Some(dataset.clone());
                rows.push((dataset, policy));
            }
            Response::Policies(rows)
        }
        proto::REQ_INGEST => {
            let tag = sec.get_u8()?;
            Response::Ingest {
                level: Level::from_tag(tag)
                    .ok_or_else(|| CodecError::Invalid(format!("unknown level {tag}")))?,
                start: sec.get_u64()?,
                items: sec.get_u64()?,
            }
        }
        proto::REQ_LIST => {
            let n = sec.get_len(8 + 1 + 2 + 1 + 8 + 8 + 8 + 8)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let dataset = sec.get_str()?;
                let tag = sec.get_u16()?;
                let kind = SummaryKind::from_tag(tag).ok_or(CodecError::UnknownKind(tag))?;
                let level_tag = sec.get_u8()?;
                let level = Level::from_tag(level_tag)
                    .ok_or_else(|| CodecError::Invalid(format!("unknown level {level_tag}")))?;
                let start = sec.get_u64()?;
                rows.push(WindowRow {
                    key: WindowKey {
                        dataset,
                        kind,
                        level,
                        start,
                    },
                    items: sec.get_u64()?,
                    batches: sec.get_u64()?,
                    frame_bytes: sec.get_u64()?,
                });
            }
            Response::List(rows)
        }
        proto::REQ_STATS => {
            let n = sec.get_len(8 + 1 + 8)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let name = sec.get_str()?;
                pairs.push((name, sec.get_u64()?));
            }
            Response::Stats(pairs)
        }
        proto::REQ_METRICS => {
            let n = sec.get_len(4 + 8)?;
            let mut counters = Vec::with_capacity(n);
            for _ in 0..n {
                let name = sec.get_str()?;
                counters.push((name, sec.get_u64()?));
            }
            sec.finish()?;
            let mut sec = frame.body.expect_section(2)?;
            let n = sec.get_len(4 + 5 * 8)?;
            let mut histograms = Vec::with_capacity(n);
            for _ in 0..n {
                let name = sec.get_str()?;
                let count = sec.get_u64()?;
                let sum = sec.get_u64()?;
                let min = sec.get_u64()?;
                let max = sec.get_u64()?;
                let buckets_len = sec.get_len(4 + 8)?;
                let mut buckets = Vec::with_capacity(buckets_len);
                let mut prev: Option<u32> = None;
                for _ in 0..buckets_len {
                    let i = sec.get_u32()?;
                    if i as usize >= sas_obs::NUM_BUCKETS {
                        return Err(CodecError::Invalid(format!(
                            "bucket index {i} out of range"
                        )));
                    }
                    if prev.is_some_and(|p| p >= i) {
                        return Err(CodecError::Invalid(format!(
                            "bucket indexes not strictly increasing at {i}"
                        )));
                    }
                    prev = Some(i);
                    buckets.push((i, sec.get_u64()?));
                }
                histograms.push((
                    name,
                    HistogramSnapshot {
                        count,
                        sum,
                        min,
                        max,
                        buckets,
                    },
                ));
            }
            sec.finish()?;
            frame.body.finish()?;
            return Ok(Response::Metrics(MetricsReport {
                counters,
                histograms,
            }));
        }
        proto::REQ_PING => Response::Pong,
        proto::REQ_SHUTDOWN => Response::Shutdown,
        other => return Err(CodecError::UnknownKind(other)),
    };
    sec.finish()?;
    frame.body.finish()?;
    Ok(resp)
}

/// The shared body of the estimate-shaped requests ([`Request::Estimate`],
/// [`Request::EstimateCov`], [`Request::Watch`]): one meta section, then
/// the query as its own sections (the same body layout as a standalone
/// `TAG_QUERY` frame).
fn encode_estimate_shape(
    tag: u16,
    dataset: &str,
    kind: SummaryKind,
    query: &Query,
    confidence: f64,
    time: Option<(u64, u64)>,
) -> Vec<u8> {
    encode_frame(tag, |w| {
        w.section(1, |w| {
            w.put_str(dataset);
            w.put_u16(kind.tag());
            w.put_f64(confidence);
            put_time(w, time);
        });
        query.write_wire(w);
    })
}

type EstimateShape = (String, SummaryKind, Query, f64, Option<(u64, u64)>);

fn read_estimate_shape(body: &mut Reader<'_>) -> Result<EstimateShape, CodecError> {
    let mut meta = body.expect_section(1)?;
    let dataset = meta.get_str()?;
    let tag = meta.get_u16()?;
    let kind = SummaryKind::from_tag(tag).ok_or(CodecError::UnknownKind(tag))?;
    let confidence = meta.get_finite_f64()?;
    if !(0.0..=1.0).contains(&confidence) {
        return Err(CodecError::Invalid(format!(
            "confidence {confidence} outside [0, 1]"
        )));
    }
    let time = get_time(&mut meta)?;
    meta.finish()?;
    let query = Query::read_wire(body)?;
    Ok((dataset, kind, query, confidence, time))
}

/// One unsolicited push for a registered watch: the subscription's query
/// re-answered against the snapshot a sealed ingest batch published.
/// Values are bit-identical to polling the same canonical query — pushes
/// go through the store's one estimate path.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchUpdate {
    /// The subscription this update belongs to.
    pub watch_id: u64,
    /// Snapshot version the update was computed against.
    pub version: u64,
    /// Windows consulted.
    pub windows: u64,
    /// The estimate.
    pub estimate: Estimate,
    /// Gap report for the watched span against the same snapshot.
    pub coverage: Coverage,
}

/// Encodes a [`WatchUpdate`] as an unsolicited `RESP_PUSH` frame.
pub fn encode_push(update: &WatchUpdate) -> Vec<u8> {
    encode_frame(proto::RESP_PUSH, |w| {
        w.section(1, |w| {
            w.put_u64(update.watch_id);
            w.put_u64(update.version);
            w.put_u64(update.windows);
        });
        update.estimate.write_wire(w);
        w.section(3, |w| update.coverage.write_wire(w));
    })
}

/// Decodes a `RESP_PUSH` frame (never panics on hostile input).
pub fn decode_push(bytes: &[u8]) -> Result<WatchUpdate, CodecError> {
    let mut frame = open_frame(bytes)?;
    if frame.kind != proto::RESP_PUSH {
        return Err(CodecError::UnknownKind(frame.kind));
    }
    let mut sec = frame.body.expect_section(1)?;
    let watch_id = sec.get_u64()?;
    let version = sec.get_u64()?;
    let windows = sec.get_u64()?;
    sec.finish()?;
    let estimate = Estimate::read_wire(&mut frame.body)?;
    let mut cov = frame.body.expect_section(3)?;
    let coverage = Coverage::read_wire(&mut cov)?;
    cov.finish()?;
    frame.body.finish()?;
    Ok(WatchUpdate {
        watch_id,
        version,
        windows,
        estimate,
        coverage,
    })
}

/// Cheap check whether a received message is an unsolicited push (watch
/// clients interleave pushes with request replies on one connection).
pub fn is_push(bytes: &[u8]) -> bool {
    open_frame(bytes)
        .map(|f| f.kind == proto::RESP_PUSH)
        .unwrap_or(false)
}

fn put_time(w: &mut Writer, time: Option<(u64, u64)>) {
    match time {
        None => w.put_u8(0),
        Some((t0, t1)) => {
            w.put_u8(1);
            w.put_u64(t0);
            w.put_u64(t1);
        }
    }
}

fn get_time(r: &mut Reader<'_>) -> Result<Option<(u64, u64)>, CodecError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => {
            let t0 = r.get_u64()?;
            let t1 = r.get_u64()?;
            if t0 > t1 {
                return Err(CodecError::Invalid(format!("empty time filter {t0}..{t1}")));
            }
            Ok(Some((t0, t1)))
        }
        other => Err(CodecError::Invalid(format!("bad time-filter flag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_fixtures() -> Vec<(Request, u16)> {
        vec![
            (
                Request::Query {
                    dataset: "web".into(),
                    kind: SummaryKind::Sample,
                    range: vec![(0, 99), (5, 10)],
                    time: Some((60, 119)),
                },
                proto::REQ_QUERY,
            ),
            (
                Request::Estimate {
                    dataset: "web".into(),
                    kind: SummaryKind::VarOptReservoir,
                    query: Query::MultiRange(vec![vec![(0, 9)], vec![(20, 29)]]),
                    confidence: 0.95,
                    time: Some((0, 600)),
                },
                proto::REQ_ESTIMATE,
            ),
            (
                Request::Estimate {
                    dataset: "web".into(),
                    kind: SummaryKind::Sample,
                    query: Query::Total,
                    confidence: 0.5,
                    time: None,
                },
                proto::REQ_ESTIMATE,
            ),
            (
                Request::EstimateCov {
                    dataset: "web".into(),
                    kind: SummaryKind::Sample,
                    query: Query::BoxRange(vec![(0, 99)]),
                    confidence: 0.9,
                    time: Some((0, 239)),
                },
                proto::REQ_ESTIMATE_COV,
            ),
            (
                Request::Watch {
                    dataset: "web".into(),
                    kind: SummaryKind::Sample,
                    query: Query::Total,
                    confidence: 0.95,
                    time: None,
                },
                proto::REQ_WATCH,
            ),
            (
                Request::PolicySet {
                    dataset: "web".into(),
                    policy: Policy {
                        compact_after: Some(60),
                        retention_ttl: Some(120),
                        per_kind_budget: [(SummaryKind::Sample.tag(), 64)].into_iter().collect(),
                    },
                },
                proto::REQ_POLICY_SET,
            ),
            (
                Request::PolicySet {
                    dataset: "web".into(),
                    policy: Policy::default(),
                },
                proto::REQ_POLICY_SET,
            ),
            (
                Request::PolicyShow {
                    dataset: Some("web".into()),
                },
                proto::REQ_POLICY_SHOW,
            ),
            (
                Request::PolicyShow { dataset: None },
                proto::REQ_POLICY_SHOW,
            ),
            (
                Request::Ingest {
                    dataset: "web".into(),
                    ts: 61,
                    frame: vec![1, 2, 3, 4],
                },
                proto::REQ_INGEST,
            ),
            (Request::List, proto::REQ_LIST),
            (Request::Stats, proto::REQ_STATS),
            (Request::Ping, proto::REQ_PING),
            (Request::Metrics, proto::REQ_METRICS),
            (Request::Shutdown, proto::REQ_SHUTDOWN),
        ]
    }

    /// A registry snapshot exercising every field: labeled and bare
    /// counters, an empty histogram, and a sparse multi-bucket one.
    fn metrics_fixture() -> MetricsReport {
        MetricsReport {
            counters: vec![
                ("sas_conns_accepted_total".into(), 256),
                ("sas_requests_total{tag=\"query\"}".into(), 5120),
            ],
            histograms: vec![
                (
                    "sas_request_ns{tag=\"ping\"}".into(),
                    HistogramSnapshot::default(),
                ),
                (
                    "sas_request_ns{tag=\"query\"}".into(),
                    HistogramSnapshot {
                        count: 5,
                        sum: 2_000_400,
                        min: 100,
                        max: 2_000_000,
                        buckets: vec![(100, 3), (101, 1), (1355, 1)],
                    },
                ),
            ],
        }
    }

    fn response_fixtures() -> Vec<(Response, u16)> {
        let row = WindowRow {
            key: WindowKey {
                dataset: "web".into(),
                kind: SummaryKind::QDigest,
                level: Level::Hour,
                start: 3600,
            },
            items: 7,
            batches: 9,
            frame_bytes: 321,
        };
        vec![
            (
                Response::Query {
                    value: -1.5,
                    windows: 3,
                    cached: true,
                },
                proto::REQ_QUERY,
            ),
            (
                Response::Estimate {
                    estimate: Estimate {
                        value: 41.5,
                        variance: 2.25,
                        lower: 38.0,
                        upper: 47.0,
                        confidence: 0.9,
                    },
                    windows: 4,
                    cached: false,
                },
                proto::REQ_ESTIMATE,
            ),
            (
                Response::EstimateCov {
                    estimate: Estimate {
                        value: 10.0,
                        variance: 1.0,
                        lower: 8.0,
                        upper: 12.0,
                        confidence: 0.9,
                    },
                    windows: 2,
                    cached: true,
                    coverage: Coverage {
                        requested: Some((0, 299)),
                        gaps: vec![
                            crate::policy::Gap {
                                start: 0,
                                end: 119,
                                expired: true,
                            },
                            crate::policy::Gap {
                                start: 240,
                                end: 299,
                                expired: false,
                            },
                        ],
                    },
                },
                proto::REQ_ESTIMATE_COV,
            ),
            (
                Response::EstimateCov {
                    estimate: Estimate::exact(0.0),
                    windows: 0,
                    cached: false,
                    coverage: Coverage::default(),
                },
                proto::REQ_ESTIMATE_COV,
            ),
            (Response::Watch { watch_id: 7 }, proto::REQ_WATCH),
            (Response::PolicySet, proto::REQ_POLICY_SET),
            (
                Response::Policies(vec![
                    (
                        "app".into(),
                        Policy {
                            retention_ttl: Some(3600),
                            ..Policy::default()
                        },
                    ),
                    (
                        "web".into(),
                        Policy {
                            compact_after: Some(60),
                            retention_ttl: Some(120),
                            per_kind_budget: [(SummaryKind::Sample.tag(), 64)]
                                .into_iter()
                                .collect(),
                        },
                    ),
                ]),
                proto::REQ_POLICY_SHOW,
            ),
            (Response::Policies(vec![]), proto::REQ_POLICY_SHOW),
            (
                Response::Ingest {
                    level: Level::Minute,
                    start: 60,
                    items: 12,
                },
                proto::REQ_INGEST,
            ),
            (Response::List(vec![row]), proto::REQ_LIST),
            (Response::List(vec![]), proto::REQ_LIST),
            (
                Response::Stats(vec![("queries".into(), 4), ("windows".into(), 2)]),
                proto::REQ_STATS,
            ),
            (Response::Metrics(metrics_fixture()), proto::REQ_METRICS),
            (
                Response::Metrics(MetricsReport::default()),
                proto::REQ_METRICS,
            ),
            (Response::Pong, proto::REQ_PING),
            (Response::Shutdown, proto::REQ_SHUTDOWN),
            (Response::Err("boom".into()), proto::REQ_QUERY),
            (Response::Err("boom".into()), proto::REQ_LIST),
            (Response::Busy("shedding load".into()), proto::REQ_QUERY),
            (
                Response::Busy("too many connections".into()),
                proto::REQ_PING,
            ),
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for (req, tag) in request_fixtures() {
            let bytes = encode_request(&req);
            assert_eq!(open_frame(&bytes).unwrap().kind, tag);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for (resp, tag) in response_fixtures() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes, tag).unwrap(), resp, "{resp:?}");
        }
    }

    fn push_fixture() -> WatchUpdate {
        WatchUpdate {
            watch_id: 3,
            version: 41,
            windows: 2,
            estimate: Estimate {
                value: 99.5,
                variance: 4.0,
                lower: 90.0,
                upper: 109.0,
                confidence: 0.95,
            },
            coverage: Coverage {
                requested: Some((0, 179)),
                gaps: vec![crate::policy::Gap {
                    start: 0,
                    end: 59,
                    expired: true,
                }],
            },
        }
    }

    #[test]
    fn push_frames_roundtrip_and_are_distinguishable() {
        let update = push_fixture();
        let bytes = encode_push(&update);
        assert!(is_push(&bytes));
        assert_eq!(decode_push(&bytes).unwrap(), update);
        // Ordinary responses are not pushes, and vice versa.
        let ok = encode_response(&Response::Pong);
        assert!(!is_push(&ok));
        assert!(decode_push(&ok).is_err());
        assert!(decode_response(&bytes, proto::REQ_PING).is_err());
    }

    #[test]
    fn hostile_push_frames_never_panic() {
        let bytes = encode_push(&push_fixture());
        for len in 0..bytes.len() {
            assert!(decode_push(&bytes[..len]).is_err(), "prefix {len}");
            let _ = is_push(&bytes[..len]);
        }
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_push(&corrupt).is_err(), "bit {bit}");
        }
    }

    #[test]
    fn estimate_response_is_not_decodable_under_the_old_tag() {
        // A REQ_ESTIMATE reply misread as a REQ_QUERY reply (or vice versa)
        // must fail cleanly — the two OK layouts are not interchangeable.
        let est = Response::Estimate {
            estimate: Estimate {
                value: 1.0,
                variance: 0.5,
                lower: 0.0,
                upper: 2.5,
                confidence: 0.9,
            },
            windows: 2,
            cached: false,
        };
        assert!(decode_response(&encode_response(&est), proto::REQ_QUERY).is_err());
        let plain = Response::Query {
            value: 1.0,
            windows: 2,
            cached: false,
        };
        assert!(decode_response(&encode_response(&plain), proto::REQ_ESTIMATE).is_err());
    }

    #[test]
    fn hostile_messages_never_panic() {
        for (req, _) in request_fixtures() {
            let bytes = encode_request(&req);
            for len in 0..bytes.len() {
                let _ = decode_request(&bytes[..len]);
            }
            for bit in 0..bytes.len() * 8 {
                let mut corrupt = bytes.clone();
                corrupt[bit / 8] ^= 1 << (bit % 8);
                assert!(decode_request(&corrupt).is_err(), "{req:?} bit {bit}");
            }
        }
        for (resp, tag) in response_fixtures() {
            let bytes = encode_response(&resp);
            for bit in 0..bytes.len() * 8 {
                let mut corrupt = bytes.clone();
                corrupt[bit / 8] ^= 1 << (bit % 8);
                assert!(
                    decode_response(&corrupt, tag).is_err(),
                    "{resp:?} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn invalid_shapes_rejected() {
        // Empty axis range.
        let bytes = encode_frame(proto::REQ_QUERY, |w| {
            w.section(1, |w| {
                w.put_str("d");
                w.put_u16(SummaryKind::Sample.tag());
                w.put_u8(0);
            });
            w.section(2, |w| {
                w.put_u64(1);
                w.put_u64(9);
                w.put_u64(3);
            });
        });
        assert!(decode_request(&bytes).is_err());
        // A summary frame is not a request.
        let frame = encode_frame(SummaryKind::Sample.tag(), |w| w.put_u64(0));
        assert!(matches!(
            decode_request(&frame),
            Err(CodecError::UnknownKind(_))
        ));
        // Inverted time filter.
        let bytes = encode_frame(proto::REQ_QUERY, |w| {
            w.section(1, |w| {
                w.put_str("d");
                w.put_u16(SummaryKind::Sample.tag());
                w.put_u8(1);
                w.put_u64(100);
                w.put_u64(50);
            });
            w.section(2, |w| w.put_u64(0));
        });
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn metrics_response_rejects_malformed_buckets() {
        let mk = |buckets: &[(u32, u64)]| {
            encode_frame(proto::RESP_OK, |w| {
                w.section(1, |w| w.put_u64(0));
                w.section(2, |w| {
                    w.put_u64(1);
                    w.put_str("sas_h_ns");
                    w.put_u64(buckets.iter().map(|&(_, n)| n).sum());
                    w.put_u64(0);
                    w.put_u64(0);
                    w.put_u64(0);
                    w.put_u64(buckets.len() as u64);
                    for &(i, n) in buckets {
                        w.put_u32(i);
                        w.put_u64(n);
                    }
                });
            })
        };
        assert!(decode_response(&mk(&[(0, 1), (5, 2)]), proto::REQ_METRICS).is_ok());
        // Out-of-range bucket index.
        let bad = mk(&[(sas_obs::NUM_BUCKETS as u32, 1)]);
        assert!(decode_response(&bad, proto::REQ_METRICS).is_err());
        // Non-increasing (duplicate) indexes break the sparse invariant.
        assert!(decode_response(&mk(&[(5, 1), (5, 1)]), proto::REQ_METRICS).is_err());
        assert!(decode_response(&mk(&[(6, 1), (5, 1)]), proto::REQ_METRICS).is_err());
    }

    #[test]
    fn estimate_request_rejects_bad_confidence_and_queries() {
        let mk = |confidence: f64, query: fn(&mut Writer)| {
            encode_frame(proto::REQ_ESTIMATE, |w| {
                w.section(1, |w| {
                    w.put_str("d");
                    w.put_u16(SummaryKind::Sample.tag());
                    w.put_f64(confidence);
                    w.put_u8(0);
                });
                query(w);
            })
        };
        let total: fn(&mut Writer) = |w| {
            w.section(1, |w| w.put_u8(5));
            w.section(2, |_| {});
        };
        assert!(decode_request(&mk(0.9, total)).is_ok());
        // Confidence outside [0, 1] (or NaN) is rejected at the wire.
        assert!(decode_request(&mk(1.5, total)).is_err());
        assert!(decode_request(&mk(-0.1, total)).is_err());
        assert!(decode_request(&mk(f64::NAN, total)).is_err());
        // A structurally invalid embedded query is rejected too.
        let reversed: fn(&mut Writer) = |w| {
            w.section(1, |w| w.put_u8(1));
            w.section(2, |w| {
                w.put_u64(1);
                w.put_u64(9);
                w.put_u64(3);
            });
        };
        assert!(decode_request(&mk(0.9, reversed)).is_err());
    }
}
