//! Dataset lifecycle policies and gap-aware coverage reports.
//!
//! A [`Policy`] declares, per dataset, how the store maintains its windows
//! over time: how long after the watermark passes a parent span the
//! merge-tree seals it ([`Policy::compact_after`]), how far behind the
//! watermark a window may fall before retention drops it
//! ([`Policy::retention_ttl`]), and per-kind ingest budget clamps
//! ([`Policy::per_kind_budget`]). Policies are persisted in the manifest
//! (crash-safe, versioned: old manifests simply have none) and enforced by
//! the deterministic lifecycle tick in [`crate::Store::lifecycle_tick`].
//!
//! All lifecycle arithmetic is *watermark-relative*: "now" for a series is
//! the largest window end ever ingested into it, never the wall clock.
//! That keeps retention a pure function of the ingest history, so
//! retention-then-recovery and recovery-then-retention produce bit-identical
//! stores — the property `crates/store/tests/lifecycle.rs` checks across
//! seeds.
//!
//! A [`Coverage`] is the answer-side complement: for a range estimate it
//! reports which parts of the requested span had no summarized data, and
//! whether each gap is merely *missing* (never ingested) or *expired*
//! (dropped by retention — the gap lies below the series' retention floor).

use std::collections::BTreeMap;
use std::fmt;

use sas_codec::{CodecError, Reader, Writer};
use sas_summaries::SummaryKind;

/// Declarative lifecycle policy for one dataset. The default policy (all
/// fields unset) reproduces the store's historical behavior: seal parents
/// as soon as the watermark passes them, never expire, clamp ingest merges
/// to the store-wide budget only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Policy {
    /// Extra ticks the watermark must advance past a parent window's end
    /// before compaction seals it. `None` (or 0) seals as soon as the
    /// parent span is fully behind the watermark.
    pub compact_after: Option<u64>,
    /// Retention: a window expires once `window.end() + ttl <= watermark`
    /// for its series. `None` means windows are kept forever. A ttl of `n`
    /// ticks keeps roughly the last `n` ticks of data per series.
    pub retention_ttl: Option<u64>,
    /// Per-kind ingest budget clamps, keyed by [`SummaryKind::tag`]. A
    /// dataset entry overrides the store-wide `StoreConfig::budget` for
    /// ingest-time merges of that kind; roll-ups keep the store budget so
    /// compaction stays bit-identical to the offline rebuild.
    pub per_kind_budget: BTreeMap<u16, u64>,
}

impl Policy {
    /// True when the policy constrains nothing; empty policies are never
    /// persisted (setting one clears the dataset's entry instead).
    pub fn is_empty(&self) -> bool {
        self.compact_after.is_none()
            && self.retention_ttl.is_none()
            && self.per_kind_budget.is_empty()
    }

    /// Writes the policy's raw fields (no section framing; callers wrap).
    pub fn write_wire(&self, w: &mut Writer) {
        put_opt_u64(w, self.compact_after);
        put_opt_u64(w, self.retention_ttl);
        w.put_u64(self.per_kind_budget.len() as u64);
        for (&tag, &budget) in &self.per_kind_budget {
            w.put_u16(tag);
            w.put_u64(budget);
        }
    }

    /// Reads a policy written by [`Policy::write_wire`], validating every
    /// field (kind tags must be registered, budgets non-zero, entries in
    /// strictly increasing tag order).
    pub fn read_wire(r: &mut Reader<'_>) -> Result<Policy, CodecError> {
        let compact_after = get_opt_u64(r)?;
        let retention_ttl = get_opt_u64(r)?;
        let n = r.get_len(2 + 8)?;
        let mut per_kind_budget = BTreeMap::new();
        let mut prev: Option<u16> = None;
        for _ in 0..n {
            let tag = r.get_u16()?;
            if SummaryKind::from_tag(tag).is_none() {
                return Err(CodecError::UnknownKind(tag));
            }
            if prev.is_some_and(|p| p >= tag) {
                return Err(CodecError::Invalid(format!(
                    "policy budget tags out of order at {tag}"
                )));
            }
            prev = Some(tag);
            let budget = r.get_u64()?;
            if budget == 0 {
                return Err(CodecError::Invalid("policy budget of zero".into()));
            }
            per_kind_budget.insert(tag, budget);
        }
        Ok(Policy {
            compact_after,
            retention_ttl,
            per_kind_budget,
        })
    }
}

impl fmt::Display for Policy {
    /// Stable one-line rendering used by `sas policy show` and `sas info`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "default");
        }
        let mut parts = Vec::new();
        if let Some(ttl) = self.retention_ttl {
            parts.push(format!("ttl={ttl}"));
        }
        if let Some(after) = self.compact_after {
            parts.push(format!("compact_after={after}"));
        }
        for (&tag, &budget) in &self.per_kind_budget {
            let name = SummaryKind::from_tag(tag).map_or("?", |k| k.name());
            parts.push(format!("budget[{name}]={budget}"));
        }
        write!(f, "{}", parts.join(" "))
    }
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        Some(v) => {
            w.put_u8(1);
            w.put_u64(v);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, CodecError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_u64()?)),
        b => Err(CodecError::Invalid(format!("bad option flag {b}"))),
    }
}

/// One uncovered stretch of a requested time span, as a closed tick
/// interval `[start, end]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gap {
    /// First uncovered tick.
    pub start: u64,
    /// Last uncovered tick (inclusive).
    pub end: u64,
    /// True when the gap lies below the series' retention floor — the data
    /// existed and was expired, rather than never ingested.
    pub expired: bool,
}

/// A gap-aware coverage report for one answered range estimate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// The closed time span the report covers: the query's `--since/--until`
    /// filter, or the series' live extent when no filter was given. `None`
    /// when the series holds no windows and no filter was given.
    pub requested: Option<(u64, u64)>,
    /// Uncovered stretches within `requested`, in increasing order,
    /// non-overlapping, never adjacent to each other across the
    /// expired/missing boundary unless the classification differs.
    pub gaps: Vec<Gap>,
}

impl Coverage {
    /// True when every requested tick was backed by a summarized window.
    pub fn is_complete(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Computes the report from a series' window spans.
    ///
    /// `spans` are half-open `[start, end)` window extents (any order,
    /// overlap across levels is fine), `requested` is the closed query time
    /// filter, and `floor` is the series' retention floor (first tick *not*
    /// expired; 0 when retention never dropped anything).
    pub fn compute(spans: &[(u64, u64)], requested: Option<(u64, u64)>, floor: u64) -> Coverage {
        let mut merged: Vec<(u64, u64)> = spans.iter().copied().filter(|&(s, e)| s < e).collect();
        merged.sort_unstable();
        let mut covered: Vec<(u64, u64)> = Vec::with_capacity(merged.len());
        for (s, e) in merged {
            match covered.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => covered.push((s, e)),
            }
        }
        let (lo, hi) = match requested {
            Some((t0, t1)) => (t0, t1),
            None => match (covered.first(), covered.last()) {
                (Some(&(first, _)), Some(&(_, last))) => (first, last - 1),
                // No windows and no filter: nothing was asked for, nothing
                // is reported — the retention floor alone does not tell us
                // where the expired data began.
                _ => return Coverage::default(),
            },
        };
        let mut gaps = Vec::new();
        let mut cursor = lo;
        for &(s, e) in &covered {
            if e <= cursor {
                continue;
            }
            if s > hi {
                break;
            }
            if s > cursor {
                push_gap(&mut gaps, cursor, s - 1, floor);
            }
            cursor = e;
            if cursor > hi {
                break;
            }
        }
        if cursor <= hi {
            push_gap(&mut gaps, cursor, hi, floor);
        }
        Coverage {
            requested: Some((lo, hi)),
            gaps,
        }
    }

    /// Writes the report's raw fields (no section framing; callers wrap).
    pub fn write_wire(&self, w: &mut Writer) {
        match self.requested {
            Some((t0, t1)) => {
                w.put_u8(1);
                w.put_u64(t0);
                w.put_u64(t1);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.gaps.len() as u64);
        for g in &self.gaps {
            w.put_u64(g.start);
            w.put_u64(g.end);
            w.put_u8(g.expired as u8);
        }
    }

    /// Reads a report written by [`Coverage::write_wire`], re-validating
    /// its invariants (ordered, non-overlapping, inside `requested`).
    pub fn read_wire(r: &mut Reader<'_>) -> Result<Coverage, CodecError> {
        let requested = match r.get_u8()? {
            0 => None,
            1 => {
                let t0 = r.get_u64()?;
                let t1 = r.get_u64()?;
                if t0 > t1 {
                    return Err(CodecError::Invalid(format!(
                        "coverage span {t0}..{t1} is inverted"
                    )));
                }
                Some((t0, t1))
            }
            b => return Err(CodecError::Invalid(format!("bad coverage flag {b}"))),
        };
        let n = r.get_len(8 + 8 + 1)?;
        if requested.is_none() && n != 0 {
            return Err(CodecError::Invalid("coverage gaps without a span".into()));
        }
        let mut gaps = Vec::with_capacity(n);
        let mut prev_end: Option<u64> = None;
        for _ in 0..n {
            let start = r.get_u64()?;
            let end = r.get_u64()?;
            let expired = match r.get_u8()? {
                0 => false,
                1 => true,
                b => return Err(CodecError::Invalid(format!("bad gap flag {b}"))),
            };
            if start > end {
                return Err(CodecError::Invalid(format!(
                    "coverage gap {start}..{end} is inverted"
                )));
            }
            if prev_end.is_some_and(|p| p >= start) {
                return Err(CodecError::Invalid("coverage gaps out of order".into()));
            }
            if let Some((t0, t1)) = requested {
                if start < t0 || end > t1 {
                    return Err(CodecError::Invalid(format!(
                        "coverage gap {start}..{end} escapes span {t0}..{t1}"
                    )));
                }
            }
            prev_end = Some(end);
            gaps.push(Gap {
                start,
                end,
                expired,
            });
        }
        Ok(Coverage { requested, gaps })
    }
}

impl fmt::Display for Coverage {
    /// Stable one-token rendering: `complete`, `empty`, or
    /// `gaps:0..59(expired),120..179(missing)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.requested.is_none() {
            return write!(f, "empty");
        }
        if self.gaps.is_empty() {
            return write!(f, "complete");
        }
        write!(f, "gaps:")?;
        for (i, g) in self.gaps.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            let kind = if g.expired { "expired" } else { "missing" };
            write!(f, "{}..{}({kind})", g.start, g.end)?;
        }
        Ok(())
    }
}

/// Splits the closed gap `[a, b]` at the retention floor: ticks below
/// `floor` were expired, ticks at or above it were never ingested.
fn push_gap(gaps: &mut Vec<Gap>, a: u64, b: u64, floor: u64) {
    if a < floor {
        gaps.push(Gap {
            start: a,
            end: b.min(floor - 1),
            expired: true,
        });
    }
    if b >= floor {
        gaps.push(Gap {
            start: a.max(floor),
            end: b,
            expired: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sas_codec::encode_frame;

    fn roundtrip_policy(p: &Policy) -> Policy {
        let bytes = encode_frame(7, |w| w.section(1, |w| p.write_wire(w)));
        let mut frame = sas_codec::open_frame(&bytes).unwrap();
        let mut sec = frame.body.expect_section(1).unwrap();
        let got = Policy::read_wire(&mut sec).unwrap();
        sec.finish().unwrap();
        got
    }

    #[test]
    fn policy_roundtrip() {
        for p in [
            Policy::default(),
            Policy {
                retention_ttl: Some(120),
                ..Policy::default()
            },
            Policy {
                compact_after: Some(60),
                retention_ttl: Some(86400),
                per_kind_budget: [
                    (SummaryKind::Sample.tag(), 64),
                    (SummaryKind::QDigest.tag(), 32),
                ]
                .into_iter()
                .collect(),
            },
        ] {
            assert_eq!(roundtrip_policy(&p), p);
        }
    }

    #[test]
    fn hostile_policy_bytes_rejected() {
        let check = |build: fn(&mut Writer)| {
            let bytes = encode_frame(7, |w| w.section(1, build));
            let mut frame = sas_codec::open_frame(&bytes).unwrap();
            let mut sec = frame.body.expect_section(1).unwrap();
            assert!(Policy::read_wire(&mut sec).is_err());
        };
        // Bad option flag.
        check(|w| w.put_u8(9));
        // Unknown kind tag in the budget map.
        check(|w| {
            w.put_u8(0);
            w.put_u8(0);
            w.put_u64(1);
            w.put_u16(0xFFFF);
            w.put_u64(8);
        });
        // Zero budget.
        check(|w| {
            w.put_u8(0);
            w.put_u8(0);
            w.put_u64(1);
            w.put_u16(SummaryKind::Sample.tag());
            w.put_u64(0);
        });
        // Duplicate / out-of-order tags.
        check(|w| {
            w.put_u8(0);
            w.put_u8(0);
            w.put_u64(2);
            w.put_u16(SummaryKind::Sample.tag());
            w.put_u64(8);
            w.put_u16(SummaryKind::Sample.tag());
            w.put_u64(8);
        });
    }

    #[test]
    fn policy_display_is_stable() {
        assert_eq!(Policy::default().to_string(), "default");
        let p = Policy {
            compact_after: Some(60),
            retention_ttl: Some(120),
            per_kind_budget: [(SummaryKind::Sample.tag(), 64)].into_iter().collect(),
        };
        assert_eq!(p.to_string(), "ttl=120 compact_after=60 budget[sample]=64");
    }

    #[test]
    fn coverage_complete_and_empty() {
        let c = Coverage::compute(&[(0, 60), (60, 120)], Some((0, 119)), 0);
        assert_eq!(c.requested, Some((0, 119)));
        assert!(c.is_complete());
        assert_eq!(c.to_string(), "complete");

        let none = Coverage::compute(&[], None, 0);
        assert_eq!(none, Coverage::default());
        assert_eq!(none.to_string(), "empty");
    }

    #[test]
    fn coverage_gaps_split_at_retention_floor() {
        // Windows [120,180) live; floor 120 (everything before was
        // expired); request 0..=239.
        let c = Coverage::compute(&[(120, 180)], Some((0, 239)), 120);
        assert_eq!(
            c.gaps,
            vec![
                Gap {
                    start: 0,
                    end: 119,
                    expired: true
                },
                Gap {
                    start: 180,
                    end: 239,
                    expired: false
                },
            ]
        );
        assert_eq!(c.to_string(), "gaps:0..119(expired),180..239(missing)");

        // A single gap straddling the floor is split in two.
        let c = Coverage::compute(&[(240, 300)], Some((0, 299)), 120);
        assert_eq!(
            c.gaps,
            vec![
                Gap {
                    start: 0,
                    end: 119,
                    expired: true
                },
                Gap {
                    start: 120,
                    end: 239,
                    expired: false
                },
            ]
        );
    }

    #[test]
    fn coverage_interior_gaps_and_overlapping_levels() {
        // Hour window [0,3600) plus its own minute children overlapping it,
        // then a detached minute at [7200,7260).
        let spans = [(0, 3600), (0, 60), (3540, 3600), (7200, 7260)];
        let c = Coverage::compute(&spans, None, 0);
        assert_eq!(c.requested, Some((0, 7259)));
        assert_eq!(
            c.gaps,
            vec![Gap {
                start: 3600,
                end: 7199,
                expired: false
            }]
        );
    }

    #[test]
    fn coverage_request_outside_data() {
        // Entirely before the data, entirely after, and zero-width.
        let spans = [(120, 180)];
        let before = Coverage::compute(&spans, Some((0, 59)), 60);
        assert_eq!(
            before.gaps,
            vec![Gap {
                start: 0,
                end: 59,
                expired: true
            }]
        );
        let after = Coverage::compute(&spans, Some((500, 500)), 60);
        assert_eq!(
            after.gaps,
            vec![Gap {
                start: 500,
                end: 500,
                expired: false
            }]
        );
        let inside = Coverage::compute(&spans, Some((150, 150)), 60);
        assert!(inside.is_complete());
    }

    #[test]
    fn coverage_roundtrip_and_hostile_bytes() {
        let fixtures = [
            Coverage::default(),
            Coverage::compute(&[(120, 180)], Some((0, 239)), 120),
            Coverage::compute(&[(0, 60)], Some((0, 59)), 0),
        ];
        for c in &fixtures {
            let bytes = encode_frame(7, |w| w.section(1, |w| c.write_wire(w)));
            let mut frame = sas_codec::open_frame(&bytes).unwrap();
            let mut sec = frame.body.expect_section(1).unwrap();
            let got = Coverage::read_wire(&mut sec).unwrap();
            sec.finish().unwrap();
            assert_eq!(&got, c);
        }
        // Inverted span, inverted gap, out-of-order gaps, escaping gap,
        // gaps without a span: all rejected.
        let hostile: [fn(&mut Writer); 5] = [
            |w| {
                w.put_u8(1);
                w.put_u64(10);
                w.put_u64(5);
                w.put_u64(0);
            },
            |w| {
                w.put_u8(1);
                w.put_u64(0);
                w.put_u64(99);
                w.put_u64(1);
                w.put_u64(9);
                w.put_u64(3);
                w.put_u8(0);
            },
            |w| {
                w.put_u8(1);
                w.put_u64(0);
                w.put_u64(99);
                w.put_u64(2);
                w.put_u64(50);
                w.put_u64(60);
                w.put_u8(0);
                w.put_u64(10);
                w.put_u64(20);
                w.put_u8(0);
            },
            |w| {
                w.put_u8(1);
                w.put_u64(10);
                w.put_u64(20);
                w.put_u64(1);
                w.put_u64(10);
                w.put_u64(21);
                w.put_u8(1);
            },
            |w| {
                w.put_u8(0);
                w.put_u64(1);
                w.put_u64(0);
                w.put_u64(1);
                w.put_u8(0);
            },
        ];
        for build in hostile {
            let bytes = encode_frame(7, |w| w.section(1, build));
            let mut frame = sas_codec::open_frame(&bytes).unwrap();
            let mut sec = frame.body.expect_section(1).unwrap();
            assert!(Coverage::read_wire(&mut sec).is_err());
        }
    }
}
