//! The `sas serve` daemon: a std-only TCP server answering the wire
//! protocol over length-prefixed frames.
//!
//! One acceptor thread feeds connections to a fixed pool of worker threads
//! through a channel; each worker runs a connection's request loop to
//! completion (requests on one connection are pipelined sequentially;
//! concurrency comes from concurrent connections). Reads go through the
//! store's snapshot path, so heavy query traffic never blocks ingest.
//! `shutdown` flips a flag, wakes the acceptor with a loopback connection,
//! and closes every registered connection socket so blocked reads unblock —
//! even clients idling on a long-lived connection cannot keep the daemon
//! alive — then [`Server::wait`] joins everything.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use sas_codec::proto;
use sas_summaries::decode_summary;

use crate::wire::{decode_request, encode_response, Request, Response};
use crate::Store;

/// Live connections, tracked so shutdown can close their sockets and
/// unblock workers parked in reads.
#[derive(Debug, Default)]
struct ConnRegistry {
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> io::Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let clone = stream.try_clone()?;
        self.conns.lock().expect("registry lock").insert(id, clone);
        Ok(id)
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().expect("registry lock").remove(&id);
    }

    fn close_all(&self) {
        for stream in self.conns.lock().expect("registry lock").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Everything a connection handler needs to participate in shutdown.
#[derive(Debug)]
struct Shared {
    store: Arc<Store>,
    shutdown: AtomicBool,
    registry: ConnRegistry,
    addr: SocketAddr,
}

impl Shared {
    /// Flips the flag, wakes the acceptor, and unblocks every parked read.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
            self.registry.close_all();
        }
    }
}

/// A running daemon.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop plus `threads` workers.
    pub fn start(
        store: Arc<Store>,
        addr: impl ToSocketAddrs,
        threads: usize,
    ) -> io::Result<Server> {
        let threads = threads.max(1);
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            store,
            shutdown: AtomicBool::new(false),
            registry: ConnRegistry::default(),
            addr: listener.local_addr()?,
        });

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sas-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Holding the receiver lock only while popping keeps
                        // the pool work-stealing: the next idle worker gets
                        // the next connection.
                        let conn = rx.lock().expect("worker queue lock").recv();
                        match conn {
                            Err(_) => return, // acceptor gone, queue drained
                            Ok(stream) => {
                                let _ = serve_connection(&shared, stream);
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let accept_shared = shared.clone();
        let acceptor = std::thread::Builder::new()
            .name("sas-serve-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::SeqCst) {
                        return; // dropping tx ends the workers
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                }
            })
            .expect("spawn acceptor");

        Ok(Server {
            shared,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Asks the daemon to stop: wakes the acceptor and closes every open
    /// connection. Call [`Server::wait`] to join.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the acceptor and every worker have exited.
    pub fn wait(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Runs one connection's request loop until the peer closes, a request
/// asks for shutdown, or shutdown closes the socket under us.
fn serve_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let id = shared.registry.register(&stream)?;
    // A shutdown that raced the registration may have missed this socket;
    // the flag check closes the window (flag is set before close_all).
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.registry.deregister(id);
        return Ok(());
    }
    let result = (|| {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        while let Some(frame) = proto::read_message(&mut reader)? {
            let (response, stop) = match decode_request(&frame) {
                Err(e) => (Response::Err(format!("bad request: {e}")), false),
                Ok(Request::Shutdown) => (Response::Shutdown, true),
                Ok(req) => (handle_request(&shared.store, req), false),
            };
            proto::write_message(&mut writer, &encode_response(&response))?;
            if stop {
                shared.begin_shutdown();
                break;
            }
        }
        Ok(())
    })();
    shared.registry.deregister(id);
    result
}

/// Dispatches one decoded request against the store. Pure: no I/O beyond
/// the store itself, so it is directly unit-testable without sockets.
pub fn handle_request(store: &Store, req: Request) -> Response {
    match req {
        Request::Query {
            dataset,
            kind,
            range,
            time,
        } => {
            let answer = store.query(&dataset, kind, &range, time);
            Response::Query {
                value: answer.value,
                windows: answer.windows,
                cached: answer.cached,
            }
        }
        Request::Estimate {
            dataset,
            kind,
            query,
            confidence,
            time,
        } => match store.estimate(&dataset, kind, &query, confidence, time) {
            Err(e) => Response::Err(e.to_string()),
            Ok(answer) => Response::Estimate {
                estimate: answer.estimate,
                windows: answer.windows,
                cached: answer.cached,
            },
        },
        Request::Ingest { dataset, ts, frame } => match decode_summary(&frame) {
            Err(e) => Response::Err(format!("bad batch frame: {e}")),
            Ok(batch) => match store.ingest(&dataset, ts, batch) {
                Err(e) => Response::Err(e.to_string()),
                Ok(window) => Response::Ingest {
                    level: window.key.level,
                    start: window.key.start,
                    items: window.summary.item_count() as u64,
                },
            },
        },
        Request::List => Response::List(store.list()),
        Request::Stats => Response::Stats(store.stats()),
        Request::Shutdown => Response::Shutdown,
    }
}
