//! The `sas serve` daemon: a non-blocking, epoll-driven event loop serving
//! the length-prefixed wire protocol — c10k-class concurrency with a fixed
//! thread count, no thread-per-connection anywhere.
//!
//! ## Architecture
//!
//! One **event-loop thread** owns every socket, a [`Poller`] (epoll on
//! Linux, portable `poll` elsewhere — see [`crate::poller`]), and all
//! per-connection state machines ([`crate::conn::Conn`]). It accepts,
//! reads, frames, and writes; decoded requests are dispatched to a small
//! **worker pool** that runs [`handle_request`] against the store (query,
//! ingest — the blocking file I/O lives here) and sends the encoded
//! response back through a completion channel, waking the loop through a
//! [`poller::WakeHandle`]. `List`/`Stats`/`Ping`/`Shutdown` and protocol
//! errors are answered inline on the loop — a ping measures loop latency
//! even while every worker is busy.
//!
//! ## Pipelining & ordering
//!
//! Clients may write any number of requests before reading. Each parsed
//! request gets a per-connection sequence number; workers complete in any
//! order, and the connection's outbox releases responses strictly in
//! sequence order.
//!
//! ## Backpressure, shedding, admission
//!
//! * A connection whose unwritten responses exceed `write_budget` stops
//!   being read until the peer drains — server memory per connection is
//!   bounded no matter how the peer behaves.
//! * Above `max_conns` active connections, new arrivals receive an
//!   explicit `RESP_BUSY` frame and a clean close (never a silent drop).
//! * With `dataset_inflight > 0`, requests against a dataset that already
//!   has that many requests in flight get `RESP_BUSY` instead of queueing
//!   — one hot dataset cannot monopolize the worker pool.
//!
//! ## Timeouts & shutdown
//!
//! A connection that starts a message but does not finish it within
//! `read_timeout` is closed (slow-loris defense: the deadline is from the
//! first byte of the message, so trickling bytes cannot extend it). An
//! optional `idle_timeout` reaps fully idle connections — except those
//! holding live watch subscriptions, which are legitimately quiet between
//! pushes. Shutdown (API or wire request) stops accepting, drops responses
//! not yet on the wire, but always completes a half-written frame — a
//! client never receives a torn response — then force-closes stragglers
//! after `shutdown_grace`.
//!
//! ## Watches & lifecycle
//!
//! `REQ_WATCH` registers a canonical query on its connection (bounded per
//! connection by `max_watches_per_conn`); every completed ingest into the
//! watched series re-answers the query on a worker and pushes the result
//! as an unsolicited `RESP_PUSH` frame through the same outbox and
//! backpressure machinery as responses. At most one evaluation per watch
//! is in flight — ingests landing meanwhile coalesce into a single
//! re-evaluation. A subscriber whose outbox exceeds the write budget is
//! shed with `RESP_BUSY` and closed, exactly like an over-limit arrival.
//! With `lifecycle_every` set, the loop also schedules a single-inflight
//! lifecycle job (retention, then compaction) on that cadence — no
//! separate compactor thread.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sas_codec::proto;
use sas_obs::{
    slog, Counter as ObsCounter, Histogram as ObsHistogram, Level as LogLevel, Registry,
};
use sas_summaries::decode_summary;

use sas_summaries::{Query, SummaryKind};

use crate::conn::{Conn, ConnConfig, Payload};
use crate::poller::{Backend, Event, Interest, InterestCache, Poller, WakeHandle, Waker};
use crate::wire::{decode_request, encode_push, encode_response, Request, Response, WatchUpdate};
use crate::Store;

/// Tuning knobs for [`Server::start_with`]. [`Default`] matches the CLI
/// defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing store requests.
    pub threads: usize,
    /// Maximum simultaneously served connections; arrivals beyond it are
    /// answered `BUSY` and closed.
    pub max_conns: usize,
    /// How long a started message may remain incomplete before the
    /// connection is closed (slow-loris defense).
    pub read_timeout: Duration,
    /// Close connections idle this long (`None`: never — long-lived
    /// client connections are legitimate).
    pub idle_timeout: Option<Duration>,
    /// Per-connection cap on unwritten response bytes before reads pause.
    pub write_budget: usize,
    /// Per-connection cap on in-flight pipelined requests.
    pub max_pipeline: usize,
    /// Per-dataset cap on in-flight requests across all connections
    /// (`0`: unlimited). Excess requests are answered `BUSY`.
    pub dataset_inflight: usize,
    /// How long shutdown waits for half-written frames to reach a
    /// boundary before force-closing.
    pub shutdown_grace: Duration,
    /// Readiness backend (`Auto`: epoll on Linux).
    pub backend: Backend,
    /// Log (at `warn`) any request whose end-to-end time — first byte read
    /// to last byte flushed — reaches this threshold, with its per-stage
    /// breakdown, dataset, and canonical query bytes (`None`: disabled).
    pub slow_query: Option<Duration>,
    /// Per-connection cap on live watch subscriptions; registrations
    /// beyond it are answered with an error.
    pub max_watches_per_conn: usize,
    /// Drive one [`Store::lifecycle_tick`] (retention, then compaction)
    /// from the event loop on this cadence (`None`: no lifecycle work).
    pub lifecycle_every: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            max_conns: 1024,
            read_timeout: Duration::from_secs(10),
            idle_timeout: None,
            write_budget: 256 * 1024,
            max_pipeline: 128,
            dataset_inflight: 0,
            shutdown_grace: Duration::from_secs(5),
            backend: Backend::Auto,
            slow_query: None,
            max_watches_per_conn: 16,
            lifecycle_every: None,
        }
    }
}

/// Counters the event loop publishes; readable at any time via
/// [`Server::metrics`]. All values are cumulative since start except
/// `active_conns`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections answered `BUSY` at the connection limit.
    pub shed_conns: u64,
    /// Requests answered `BUSY` by per-dataset admission control.
    pub shed_requests: u64,
    /// Connections closed by the read (slow-loris) timeout.
    pub read_timeouts: u64,
    /// Connections closed by the idle timeout.
    pub idle_timeouts: u64,
    /// Connections dropped for fatal framing (oversized length).
    pub protocol_errors: u64,
    /// Requests dispatched to the worker pool.
    pub requests: u64,
    /// High-water mark of any connection's unwritten response bytes.
    pub max_queued_bytes: u64,
    /// Currently served connections.
    pub active_conns: u64,
}

/// The loop's counters, backed by the store's metric registry so the same
/// cells serve both [`Server::metrics`] and the `REQ_METRICS` exposition.
/// `max_queued_bytes` doubles as the registry's high-water cell (via
/// `record_max`); `active_conns` is a gauge and stays out of the registry
/// (counters there are cumulative).
#[derive(Debug)]
struct MetricCells {
    accepted: Arc<ObsCounter>,
    shed_conns: Arc<ObsCounter>,
    shed_requests: Arc<ObsCounter>,
    read_timeouts: Arc<ObsCounter>,
    idle_timeouts: Arc<ObsCounter>,
    protocol_errors: Arc<ObsCounter>,
    requests: Arc<ObsCounter>,
    max_queued_bytes: Arc<ObsCounter>,
    active_conns: AtomicU64,
}

impl MetricCells {
    fn new(reg: &Registry) -> MetricCells {
        MetricCells {
            accepted: reg.counter("sas_conns_accepted_total"),
            shed_conns: reg.counter("sas_conns_shed_total"),
            shed_requests: reg.counter("sas_requests_shed_total"),
            read_timeouts: reg.counter("sas_conn_read_timeouts_total"),
            idle_timeouts: reg.counter("sas_conn_idle_timeouts_total"),
            protocol_errors: reg.counter("sas_protocol_errors_total"),
            requests: reg.counter("sas_requests_dispatched_total"),
            max_queued_bytes: reg.counter("sas_conn_queued_bytes_highwater"),
            active_conns: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> ServerMetrics {
        ServerMetrics {
            accepted: self.accepted.get(),
            shed_conns: self.shed_conns.get(),
            shed_requests: self.shed_requests.get(),
            read_timeouts: self.read_timeouts.get(),
            idle_timeouts: self.idle_timeouts.get(),
            protocol_errors: self.protocol_errors.get(),
            requests: self.requests.get(),
            max_queued_bytes: self.max_queued_bytes.get(),
            active_conns: self.active_conns.load(Ordering::Relaxed),
        }
    }

    fn bump_queued_high_water(&self, queued: usize) {
        self.max_queued_bytes.record_max(queued as u64);
    }
}

/// Stage names of the per-request clock, in pipeline order. Every request
/// is timed through all six; inline answers (ping, protocol errors) simply
/// record zero for `queue` and `work`.
const STAGES: [&str; 6] = ["read", "parse", "queue", "work", "queued", "flush"];

/// Request tags used as metric labels. `invalid` is undecodable frames.
const TAGS: [&str; 13] = [
    "query",
    "estimate",
    "estimate_cov",
    "watch",
    "policy_set",
    "policy_show",
    "ingest",
    "list",
    "stats",
    "metrics",
    "ping",
    "shutdown",
    "invalid",
];

fn request_tag(req: &Request) -> &'static str {
    match req {
        Request::Query { .. } => "query",
        Request::Estimate { .. } => "estimate",
        Request::EstimateCov { .. } => "estimate_cov",
        Request::Watch { .. } => "watch",
        Request::PolicySet { .. } => "policy_set",
        Request::PolicyShow { .. } => "policy_show",
        Request::Ingest { .. } => "ingest",
        Request::List => "list",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Ping => "ping",
        Request::Shutdown => "shutdown",
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Pre-resolved per-tag request metrics: one completion counter, one
/// end-to-end histogram, and one histogram per stage. Resolved once at
/// startup so the hot path never touches the registry lock.
struct TagCells {
    completed: Arc<ObsCounter>,
    total_ns: Arc<ObsHistogram>,
    stage_ns: [Arc<ObsHistogram>; 6],
}

struct RequestObs {
    cells: HashMap<&'static str, TagCells>,
}

impl RequestObs {
    fn new(reg: &Registry) -> RequestObs {
        let cells = TAGS
            .iter()
            .map(|&tag| {
                let stage_ns = STAGES.map(|stage| {
                    reg.histogram(&format!("sas_stage_ns{{tag=\"{tag}\",stage=\"{stage}\"}}"))
                });
                (
                    tag,
                    TagCells {
                        completed: reg.counter(&format!("sas_requests_total{{tag=\"{tag}\"}}")),
                        total_ns: reg.histogram(&format!("sas_request_ns{{tag=\"{tag}\"}}")),
                        stage_ns,
                    },
                )
            })
            .collect();
        RequestObs { cells }
    }

    fn cells(&self, tag: &str) -> &TagCells {
        self.cells
            .get(tag)
            .unwrap_or_else(|| &self.cells["invalid"])
    }
}

/// What the slow-query log reports beyond timings. Captured by workers
/// only when the log is enabled (the canonical-query hex costs an
/// allocation per request).
struct SlowMeta {
    dataset: String,
    /// Canonical query bytes, hex-encoded (`-` for requests with none).
    query: String,
    /// Summary windows the answer consulted.
    windows: u64,
}

/// One request's stage clock, parked in its connection until the response
/// is fully flushed. The end-to-end time is **defined** as the sum of the
/// six stages — no `Instant` subtraction across threads.
struct ReqTrace {
    tag: &'static str,
    read_ns: u64,
    parse_ns: u64,
    queue_ns: u64,
    work_ns: u64,
    /// When the response entered the outbox (starts the `queued` stage).
    t_queued: Instant,
    /// When its first byte reached the socket (starts the `flush` stage).
    t_first_write: Option<Instant>,
    slow: Option<SlowMeta>,
}

impl ReqTrace {
    fn inline(tag: &'static str, read_ns: u64, parse_ns: u64) -> ReqTrace {
        ReqTrace {
            tag,
            read_ns,
            parse_ns,
            queue_ns: 0,
            work_ns: 0,
            t_queued: Instant::now(),
            t_first_write: None,
            slow: None,
        }
    }
}

/// One watch subscription's immutable description: the canonical query a
/// worker re-answers on every matching ingest. Shared (`Arc`) between the
/// loop's registration state and in-flight evaluation jobs.
#[derive(Debug)]
struct WatchSpec {
    dataset: String,
    kind: SummaryKind,
    query: Query,
    confidence: f64,
    time: Option<(u64, u64)>,
}

/// What a worker is asked to do.
enum Work {
    /// Answer a client request (the classic path).
    Req(Request),
    /// Validate a watch registration by answering its query once.
    WatchRegister { watch_id: u64, spec: Arc<WatchSpec> },
    /// Re-answer a registered watch after an ingest into its series.
    WatchEval { watch_id: u64, spec: Arc<WatchSpec> },
    /// One retention + compaction pass.
    Lifecycle,
}

/// What the event loop hands a worker.
struct Job {
    token: u64,
    seq: u64,
    dataset: Option<String>,
    work: Work,
    tag: &'static str,
    read_ns: u64,
    parse_ns: u64,
    /// When the loop queued the job (starts the `queue` stage).
    t_dispatched: Instant,
}

/// How a completion's message (if any) reaches the peer.
enum Delivery {
    /// Sequenced response through the connection's ordered outbox.
    Response { seq: u64 },
    /// Unsolicited push for a watch, injected if it is still registered.
    Push { watch_id: u64 },
    /// No peer at all: a lifecycle pass finished.
    Lifecycle,
}

/// What a worker hands back.
struct Completion {
    token: u64,
    delivery: Delivery,
    dataset: Option<String>,
    /// `None`: nothing to write (lifecycle, or a watch eval that errored).
    message: Option<Payload>,
    tag: &'static str,
    read_ns: u64,
    parse_ns: u64,
    queue_ns: u64,
    work_ns: u64,
    slow: Option<SlowMeta>,
    /// A successful ingest sealed into this `(dataset, kind tag)` series —
    /// the loop re-evaluates matching watches.
    ingested: Option<(String, u16)>,
    /// A validated watch registration for the loop to install.
    register_watch: Option<(u64, Arc<WatchSpec>)>,
}

/// Key identifying one cacheable estimate response within a snapshot
/// version: the same fields the store's own LRU keys on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MsgKey {
    dataset: String,
    kind_tag: u16,
    query: Vec<u8>,
    confidence_bits: u64,
    time: Option<(u64, u64)>,
}

/// Fully encoded, length-prefixed `cached = true` estimate messages,
/// shared across workers and connections. A hit skips the wire encode
/// entirely and every connection's outbox holds the same `Arc` — the bytes
/// are copied exactly once, by the kernel, per socket write. Keyed by
/// snapshot version; any version bump clears the lot (a stale entry could
/// otherwise outlive the windows it describes).
/// Snapshot version + the encoded messages cached under it.
type VersionedMessages = (u64, HashMap<MsgKey, Arc<Vec<u8>>>);

#[derive(Debug)]
struct MessageCache {
    max_entries: usize,
    inner: Mutex<VersionedMessages>,
}

impl MessageCache {
    fn new(max_entries: usize) -> MessageCache {
        MessageCache {
            max_entries,
            inner: Mutex::new((0, HashMap::new())),
        }
    }

    fn sync_version(
        guard: &mut VersionedMessages,
        version: u64,
    ) -> &mut HashMap<MsgKey, Arc<Vec<u8>>> {
        if guard.0 != version {
            guard.1.clear();
            guard.0 = version;
        }
        &mut guard.1
    }

    fn get(&self, version: u64, key: &MsgKey) -> Option<Arc<Vec<u8>>> {
        let mut guard = self.inner.lock().expect("message cache lock");
        Self::sync_version(&mut guard, version).get(key).cloned()
    }

    fn put(&self, version: u64, key: MsgKey, message: Arc<Vec<u8>>) {
        let mut guard = self.inner.lock().expect("message cache lock");
        let map = Self::sync_version(&mut guard, version);
        // At capacity, skip the insert: the next snapshot bump clears the
        // map anyway, and an LRU here would buy little for its bookkeeping.
        if map.len() < self.max_entries {
            map.insert(key, message);
        }
    }
}

/// Answers an estimate request through the shared message cache: once the
/// store reports the answer as cached, the encoded response is built one
/// time per snapshot and every later hit returns the same shared bytes.
/// Also returns the number of windows consulted (slow-query metadata).
fn estimate_message(
    store: &Store,
    cache: &MessageCache,
    dataset: String,
    kind: SummaryKind,
    query: Query,
    confidence: f64,
    time: Option<(u64, u64)>,
) -> (Payload, u64) {
    let canonical = query.canonical_bytes().ok();
    match store.estimate(&dataset, kind, &query, confidence, time) {
        Err(e) => (
            Payload::Owned(to_message(&encode_response(&Response::Err(e.to_string())))),
            0,
        ),
        Ok(answer) => {
            if answer.cached {
                if let Some(canonical) = canonical {
                    let key = MsgKey {
                        dataset,
                        kind_tag: kind.tag(),
                        query: canonical,
                        confidence_bits: confidence.to_bits(),
                        time,
                    };
                    if let Some(message) = cache.get(answer.version, &key) {
                        return (Payload::Shared(message), answer.windows);
                    }
                    let message = Arc::new(to_message(&encode_response(&Response::Estimate {
                        estimate: answer.estimate,
                        windows: answer.windows,
                        cached: true,
                    })));
                    cache.put(answer.version, key, message.clone());
                    return (Payload::Shared(message), answer.windows);
                }
            }
            (
                Payload::Owned(to_message(&encode_response(&Response::Estimate {
                    estimate: answer.estimate,
                    windows: answer.windows,
                    cached: answer.cached,
                }))),
                answer.windows,
            )
        }
    }
}

/// The canonical query bytes of a request, hex-encoded for the slow-query
/// log (`-` when the request has none or it cannot be canonicalized).
fn canonical_query_hex(req: &Request) -> String {
    let bytes = match req {
        Request::Query { range, .. } => Query::BoxRange(range.clone()).canonical_bytes().ok(),
        Request::Estimate { query, .. }
        | Request::EstimateCov { query, .. }
        | Request::Watch { query, .. } => query.canonical_bytes().ok(),
        _ => None,
    };
    match bytes {
        None => "-".into(),
        Some(b) => b.iter().map(|x| format!("{x:02x}")).collect(),
    }
}

/// State shared between the public handle, the loop, and the workers.
#[derive(Debug)]
struct Shared {
    shutdown: AtomicBool,
    addr: SocketAddr,
    metrics: MetricCells,
    wake: WakeHandle,
}

impl Shared {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.wake.wake();
        }
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] then [`Server::wait`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts the daemon with default tuning plus the
    /// given worker-thread count — the signature PR 4's blocking server
    /// exposed, kept for the CLI and existing tests.
    pub fn start(
        store: Arc<Store>,
        addr: impl ToSocketAddrs,
        threads: usize,
    ) -> io::Result<Server> {
        Server::start_with(
            store,
            addr,
            ServerConfig {
                threads,
                ..ServerConfig::default()
            },
        )
    }

    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the event loop plus `config.threads` workers.
    pub fn start_with(
        store: Arc<Store>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let config = ServerConfig {
            threads: config.threads.max(1),
            max_conns: config.max_conns.max(1),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let waker = Waker::new()?;
        let registry = store.obs().clone();
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            addr: listener.local_addr()?,
            metrics: MetricCells::new(&registry),
            wake: waker.handle()?,
        });

        let (job_tx, job_rx): (Sender<Job>, Receiver<Job>) = channel();
        let (done_tx, done_rx): (Sender<Completion>, Receiver<Completion>) = channel();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let message_cache = Arc::new(MessageCache::new(config.max_conns.max(1024)));
        let slow_enabled = config.slow_query.is_some();
        let workers = (0..config.threads)
            .map(|i| {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                let store = store.clone();
                let wake = shared.wake.clone();
                let message_cache = message_cache.clone();
                std::thread::Builder::new()
                    .name(format!("sas-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Lock only to pop: the next idle worker takes the
                        // next job.
                        let job = job_rx.lock().expect("worker queue lock").recv();
                        let Ok(Job {
                            token,
                            seq,
                            dataset,
                            work,
                            tag,
                            read_ns,
                            parse_ns,
                            t_dispatched,
                        }) = job
                        else {
                            return; // loop gone, queue drained
                        };
                        let work_started = Instant::now();
                        let queue_ns = u64::try_from((work_started - t_dispatched).as_nanos())
                            .unwrap_or(u64::MAX);
                        let mut slow = None;
                        let mut ingested = None;
                        let mut register_watch = None;
                        let (delivery, message) = match work {
                            Work::Req(req) => {
                                // Slow-log metadata is captured up front:
                                // whether the request turns out slow is only
                                // known after the flush, when `req` is gone.
                                slow = slow_enabled.then(|| SlowMeta {
                                    dataset: dataset.clone().unwrap_or_else(|| "-".into()),
                                    query: canonical_query_hex(&req),
                                    windows: 0,
                                });
                                let message = match req {
                                    Request::Estimate {
                                        dataset,
                                        kind,
                                        query,
                                        confidence,
                                        time,
                                    } => {
                                        let (message, windows) = estimate_message(
                                            &store,
                                            &message_cache,
                                            dataset,
                                            kind,
                                            query,
                                            confidence,
                                            time,
                                        );
                                        if let Some(meta) = &mut slow {
                                            meta.windows = windows;
                                        }
                                        message
                                    }
                                    Request::Ingest { dataset, ts, frame } => {
                                        let (response, series) =
                                            ingest_response(&store, &dataset, ts, &frame);
                                        ingested = series;
                                        Payload::Owned(to_message(&encode_response(&response)))
                                    }
                                    req => {
                                        let response = handle_request(&store, req);
                                        if let Some(meta) = &mut slow {
                                            meta.windows = match &response {
                                                Response::Query { windows, .. }
                                                | Response::Estimate { windows, .. }
                                                | Response::EstimateCov { windows, .. } => {
                                                    *windows
                                                }
                                                _ => 0,
                                            };
                                        }
                                        Payload::Owned(to_message(&encode_response(&response)))
                                    }
                                };
                                (Delivery::Response { seq }, Some(message))
                            }
                            Work::WatchRegister { watch_id, spec } => {
                                // Validate by answering once: a query the
                                // store cannot answer (bad confidence for
                                // the kind, say) must fail loudly here, not
                                // register a watch that can never push. An
                                // empty dataset is fine — data may arrive —
                                // but an *invalid* name never can, since
                                // ingest would have refused it.
                                let valid = crate::window::valid_dataset(&spec.dataset);
                                let response = if !valid {
                                    Response::Err(format!(
                                        "invalid dataset name '{}' (want [A-Za-z0-9_-]+, at most 128 chars)",
                                        spec.dataset
                                    ))
                                } else {
                                    match store.estimate_with_coverage(
                                        &spec.dataset,
                                        spec.kind,
                                        &spec.query,
                                        spec.confidence,
                                        spec.time,
                                    ) {
                                        Err(e) => Response::Err(e.to_string()),
                                        Ok(_) => {
                                            register_watch = Some((watch_id, spec));
                                            Response::Watch { watch_id }
                                        }
                                    }
                                };
                                (
                                    Delivery::Response { seq },
                                    Some(Payload::Owned(to_message(&encode_response(
                                        &response,
                                    )))),
                                )
                            }
                            Work::WatchEval { watch_id, spec } => {
                                let message = match store.estimate_with_coverage(
                                    &spec.dataset,
                                    spec.kind,
                                    &spec.query,
                                    spec.confidence,
                                    spec.time,
                                ) {
                                    // An update that cannot be computed is
                                    // dropped, not fabricated; the next
                                    // ingest retriggers the evaluation.
                                    Err(_) => None,
                                    Ok((answer, coverage)) => {
                                        Some(Payload::Owned(to_message(&encode_push(
                                            &WatchUpdate {
                                                watch_id,
                                                version: answer.version,
                                                windows: answer.windows,
                                                estimate: answer.estimate,
                                                coverage,
                                            },
                                        ))))
                                    }
                                };
                                (Delivery::Push { watch_id }, message)
                            }
                            Work::Lifecycle => {
                                if let Err(e) = store.lifecycle_tick() {
                                    slog!(LogLevel::Warn, "lifecycle_tick_failed", err = e);
                                }
                                (Delivery::Lifecycle, None)
                            }
                        };
                        let work_ns = elapsed_ns(work_started);
                        if done_tx
                            .send(Completion {
                                token,
                                delivery,
                                dataset,
                                message,
                                tag,
                                read_ns,
                                parse_ns,
                                queue_ns,
                                work_ns,
                                slow,
                                ingested,
                                register_watch,
                            })
                            .is_err()
                        {
                            return;
                        }
                        wake.wake();
                    })
                    .expect("spawn worker")
            })
            .collect();

        let mut event_loop = EventLoop::new(
            listener,
            waker,
            shared.clone(),
            config,
            job_tx,
            done_rx,
            &registry,
        )?;
        let handle = std::thread::Builder::new()
            .name("sas-serve-loop".into())
            .spawn(move || event_loop.run())
            .expect("spawn event loop");

        Ok(Server {
            shared,
            event_loop: Some(handle),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The loop's counters, readable at any time.
    pub fn metrics(&self) -> ServerMetrics {
        self.shared.metrics.snapshot()
    }

    /// Asks the daemon to stop: the loop stops accepting, flushes every
    /// connection to a frame boundary, and exits. Idempotent. Call
    /// [`Server::wait`] to join.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the event loop and every worker have exited.
    pub fn wait(mut self) {
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Prefixes a frame with its length — the complete wire message.
fn to_message(frame: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(4 + frame.len());
    m.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    m.extend_from_slice(frame);
    m
}

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Cap on bytes read from one connection per readiness event, so one
/// fire-hose peer cannot starve the rest of the loop (level-triggered
/// polling re-reports the remainder immediately).
const READ_QUANTUM: usize = 64 * 1024;

/// One registered watch on a connection, with its coalescing state: at
/// most one evaluation in flight, at most one pending behind it — however
/// many ingests land while a push is being computed, the subscriber gets
/// exactly one more re-evaluation, against whatever snapshot is current.
struct WatchState {
    id: u64,
    spec: Arc<WatchSpec>,
    /// An evaluation job for this watch is on a worker.
    inflight: bool,
    /// A matching ingest completed while `inflight`; re-evaluate once the
    /// current evaluation lands.
    dirty: bool,
}

/// One served connection inside the loop.
struct ConnEntry {
    stream: TcpStream,
    conn: Conn,
    /// When the currently incomplete inbound message started (read
    /// timeout anchor).
    frame_started: Option<Instant>,
    /// Last moment anything happened (idle timeout anchor).
    last_activity: Instant,
    /// The peer half-closed its write side; no more requests will arrive.
    peer_done: bool,
    /// Stage clocks of requests whose responses are not yet fully
    /// flushed, by sequence number. Bounded by `max_pipeline`.
    traces: HashMap<u64, ReqTrace>,
    /// Live watch subscriptions. A non-empty list exempts the connection
    /// from the idle timeout. Bounded by `max_watches_per_conn`.
    watches: Vec<WatchState>,
    /// Watch registrations dispatched but not yet answered; counted
    /// against the cap so a pipelined burst cannot overshoot it.
    pending_watches: usize,
}

impl ConnEntry {
    fn new(stream: TcpStream, conn: Conn, peer_done: bool) -> ConnEntry {
        ConnEntry {
            stream,
            conn,
            frame_started: None,
            last_activity: Instant::now(),
            peer_done,
            traces: HashMap::new(),
            watches: Vec::new(),
            pending_watches: 0,
        }
    }
}

/// Event-loop health counters, resolved once from the registry.
struct LoopObs {
    /// `poller.wait` returns.
    wakeups: Arc<ObsCounter>,
    /// Wait returns with no readiness events (timeout ticks).
    spurious: Arc<ObsCounter>,
    /// Interest re-registrations skipped because the cached interest
    /// already matched (syscalls saved by the interest cache).
    reregisters_elided: Arc<ObsCounter>,
    /// Transitions to `Interest::NONE` — connections parked by
    /// backpressure with nothing to write.
    parked: Arc<ObsCounter>,
    /// Readiness events left unread because the connection's write budget
    /// or pipeline cap paused reading.
    backpressure_stalls: Arc<ObsCounter>,
    /// Watch update frames injected into subscriber outboxes.
    watch_pushes: Arc<ObsCounter>,
    /// Subscribers shed (BUSY + close) for not draining their pushes.
    watch_shed: Arc<ObsCounter>,
    /// Lifecycle ticks the loop scheduled onto the worker pool.
    lifecycle_ticks: Arc<ObsCounter>,
}

impl LoopObs {
    fn new(reg: &Registry) -> LoopObs {
        LoopObs {
            wakeups: reg.counter("sas_loop_wakeups_total"),
            spurious: reg.counter("sas_loop_spurious_wakeups_total"),
            reregisters_elided: reg.counter("sas_loop_reregisters_elided_total"),
            parked: reg.counter("sas_conns_parked_total"),
            backpressure_stalls: reg.counter("sas_read_backpressure_stalls_total"),
            watch_pushes: reg.counter("sas_watch_pushes_total"),
            watch_shed: reg.counter("sas_watch_shed_total"),
            lifecycle_ticks: reg.counter("sas_lifecycle_ticks_total"),
        }
    }
}

struct EventLoop {
    listener: TcpListener,
    waker: Waker,
    shared: Arc<Shared>,
    config: ServerConfig,
    job_tx: Sender<Job>,
    done_rx: Receiver<Completion>,
    poller: Poller,
    interest: InterestCache,
    conns: HashMap<u64, ConnEntry>,
    next_token: u64,
    /// In-flight requests per dataset (admission control).
    dataset_inflight: HashMap<String, usize>,
    /// Set once a shutdown request frame was answered or the API flag
    /// flipped; the loop drains and exits.
    shutting_down: bool,
    shutdown_deadline: Option<Instant>,
    read_scratch: Vec<u8>,
    /// Daemon-unique watch ids (echoed in every push frame).
    next_watch_id: u64,
    /// When the last lifecycle tick *completed* (cadence anchor).
    last_lifecycle: Instant,
    /// A lifecycle job is on the worker pool; never schedule a second.
    lifecycle_inflight: bool,
    lobs: LoopObs,
    robs: RequestObs,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        waker: Waker,
        shared: Arc<Shared>,
        config: ServerConfig,
        job_tx: Sender<Job>,
        done_rx: Receiver<Completion>,
        registry: &Registry,
    ) -> io::Result<EventLoop> {
        let mut poller = Poller::with_backend(config.backend)?;
        let mut interest = InterestCache::new();
        interest.register(
            &mut poller,
            listener.as_raw_fd(),
            LISTENER_TOKEN,
            Interest::READ,
        )?;
        interest.register(&mut poller, waker.read_fd(), WAKER_TOKEN, Interest::READ)?;
        Ok(EventLoop {
            listener,
            waker,
            shared,
            config,
            job_tx,
            done_rx,
            poller,
            interest,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            dataset_inflight: HashMap::new(),
            shutting_down: false,
            shutdown_deadline: None,
            read_scratch: vec![0u8; READ_QUANTUM],
            next_watch_id: 1,
            last_lifecycle: Instant::now(),
            lifecycle_inflight: false,
            lobs: LoopObs::new(registry),
            robs: RequestObs::new(registry),
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.wait_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A failed wait would spin; nothing sensible to do but
                // stop. (Never observed outside fd exhaustion.)
                break;
            }
            self.lobs.wakeups.inc();
            if events.is_empty() {
                self.lobs.spurious.inc();
            }

            self.drain_completions();

            let fired: Vec<Event> = std::mem::take(&mut events);
            for ev in fired {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.conn_ready(token, ev),
                }
            }

            if self.shared.shutdown.load(Ordering::SeqCst) && !self.shutting_down {
                self.enter_shutdown();
            }
            self.maybe_schedule_lifecycle();
            self.sweep_timeouts();
            self.refresh_interest();

            if self.shutting_down {
                let expired = self
                    .shutdown_deadline
                    .map(|d| Instant::now() >= d)
                    .unwrap_or(false);
                if expired {
                    // Grace over: whoever did not drain loses the tail.
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for t in tokens {
                        self.drop_conn(t);
                    }
                }
                if self.conns.is_empty() {
                    return;
                }
            }
        }
    }

    /// The poller timeout: the nearest deadline among read/idle timeouts,
    /// the lifecycle cadence, and the shutdown grace, clamped to keep the
    /// loop responsive.
    fn wait_timeout(&self) -> Duration {
        let mut next: Option<Instant> = self.shutdown_deadline;
        let now = Instant::now();
        if let (Some(every), false) = (self.config.lifecycle_every, self.lifecycle_inflight) {
            let deadline = self.last_lifecycle + every;
            next = Some(next.map_or(deadline, |n| n.min(deadline)));
        }
        for entry in self.conns.values() {
            if let Some(started) = entry.frame_started {
                let deadline = started + self.config.read_timeout;
                next = Some(next.map_or(deadline, |n| n.min(deadline)));
            } else if let Some(idle) = self.config.idle_timeout {
                // Watch subscribers are exempt from the idle reap and set
                // no idle deadline.
                if entry.watches.is_empty() {
                    let deadline = entry.last_activity + idle;
                    next = Some(next.map_or(deadline, |n| n.min(deadline)));
                }
            }
        }
        let cap = Duration::from_millis(500);
        match next {
            None => cap,
            Some(d) => d.saturating_duration_since(now).min(cap),
        }
    }

    /// Schedules one lifecycle pass onto the worker pool when the cadence
    /// is due. Single-inflight: a slow pass never stacks a second behind
    /// it, and the cadence anchor resets when the pass *completes*.
    fn maybe_schedule_lifecycle(&mut self) {
        let Some(every) = self.config.lifecycle_every else {
            return;
        };
        if self.lifecycle_inflight || self.shutting_down {
            return;
        }
        if self.last_lifecycle.elapsed() < every {
            return;
        }
        let job = Job {
            token: LISTENER_TOKEN, // no connection
            seq: 0,
            dataset: None,
            work: Work::Lifecycle,
            tag: "invalid", // never recorded: lifecycle has no trace
            read_ns: 0,
            parse_ns: 0,
            t_dispatched: Instant::now(),
        };
        if self.job_tx.send(job).is_ok() {
            self.lifecycle_inflight = true;
            self.lobs.lifecycle_ticks.inc();
        }
    }

    // ---- accept path -------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient (ECONNABORTED etc.); retry next tick
                Ok((stream, _peer)) => {
                    if self.shutting_down {
                        drop(stream); // no new work during drain
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if self.conns.len() >= self.config.max_conns {
                        self.shed(stream);
                        continue;
                    }
                    self.install(stream);
                }
            }
        }
    }

    /// Over the connection limit: answer one explicit BUSY frame, flush
    /// it, close. The connection occupies a token until the frame is out,
    /// but never dispatches work, and the stuck-drain timeout bounds how
    /// long a peer that refuses to read the BUSY can hold it.
    fn shed(&mut self, stream: TcpStream) {
        self.shared.metrics.shed_conns.inc();
        let token = self.next_token;
        self.next_token += 1;
        let mut conn = Conn::new(self.conn_config());
        conn.inject_unsolicited(to_message(&encode_response(&Response::Busy(
            "connection limit reached".into(),
        ))));
        conn.close_after_flush();
        if self
            .interest
            .register(&mut self.poller, stream.as_raw_fd(), token, Interest::WRITE)
            .is_err()
        {
            return; // fd gone already; nothing to shed
        }
        self.conns.insert(token, ConnEntry::new(stream, conn, true));
        self.flush_conn(token);
        self.maybe_close(token);
    }

    fn install(&mut self, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .interest
            .register(&mut self.poller, stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.conns.insert(
            token,
            ConnEntry::new(stream, Conn::new(self.conn_config()), false),
        );
        self.shared.metrics.accepted.inc();
        self.shared
            .metrics
            .active_conns
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    fn conn_config(&self) -> ConnConfig {
        ConnConfig {
            write_budget: self.config.write_budget,
            max_frame: proto::MAX_MESSAGE_LEN,
            max_pipeline: self.config.max_pipeline,
        }
    }

    // ---- connection I/O ----------------------------------------------

    fn conn_ready(&mut self, token: u64, ev: Event) {
        if !self.conns.contains_key(&token) {
            return; // reaped earlier this tick
        }
        if ev.error {
            // Try a read to surface the precise error; either way the
            // connection is done. EPOLLHUP with pending data still reads.
            self.drop_conn(token);
            return;
        }
        if ev.readable {
            self.read_ready(token);
        }
        if self.conns.contains_key(&token) && ev.writable {
            self.flush_conn(token);
            // A drained outbox may free the write budget: parked messages
            // release now, not on the next socket read.
            self.pump(token);
            self.flush_conn(token);
        }
        self.maybe_close(token);
    }

    fn read_ready(&mut self, token: u64) {
        enum Fate {
            Keep,
            Drop,
            Protocol,
        }
        let mut frames = Vec::new();
        // Scoped so the `conns` borrow ends before drop_conn/dispatch.
        let (fate, read_anchor) = {
            let Some(entry) = self.conns.get_mut(&token) else {
                return;
            };
            if entry.conn.closing() {
                return;
            }
            if !entry.conn.wants_read() {
                // Backpressure: leave the bytes in the kernel buffer; TCP
                // flow control pushes back on the peer.
                self.lobs.backpressure_stalls.inc();
                return;
            }
            // Anchor for the `read` stage: if a partial message was
            // already pending, the first frame completed by this pass has
            // been arriving since then. Later frames rode the same burst.
            let read_anchor = entry.frame_started;
            let mut total = 0usize;
            let mut eof = false;
            let mut fate = Fate::Keep;
            loop {
                if total >= READ_QUANTUM {
                    break; // fairness: the rest surfaces next tick
                }
                let window = READ_QUANTUM - total;
                match entry.stream.read(&mut self.read_scratch[..window]) {
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        fate = Fate::Drop;
                        break;
                    }
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        total += n;
                        match entry.conn.on_bytes(&self.read_scratch[..n]) {
                            Ok(mut got) => frames.append(&mut got),
                            Err(_fatal) => {
                                fate = Fate::Protocol;
                                break;
                            }
                        }
                        if !entry.conn.wants_read() {
                            // budget/pipeline limit hit mid-read
                            self.lobs.backpressure_stalls.inc();
                            break;
                        }
                    }
                }
            }
            if total > 0 {
                entry.last_activity = Instant::now();
            }
            // Read-timeout anchor: a partial message keeps its original
            // start (trickling bytes must not extend the deadline); a
            // clean boundary clears it.
            entry.frame_started = if entry.conn.has_partial_frame() {
                Some(entry.frame_started.unwrap_or_else(Instant::now))
            } else {
                None
            };
            if matches!(fate, Fate::Keep) && eof {
                entry.peer_done = true;
                if entry.conn.has_partial_frame() {
                    // Mid-frame half-close: the message can never
                    // complete; drop without occupying a worker.
                    fate = Fate::Drop;
                } else if entry.conn.idle() && frames.is_empty() {
                    fate = Fate::Drop;
                } else {
                    // Half-close with requests pending: answer them,
                    // flush, then close (maybe_close once drained).
                    entry.conn.close_after_flush();
                }
            }
            (fate, read_anchor)
        };
        match fate {
            Fate::Protocol => {
                self.shared.metrics.protocol_errors.inc();
                self.drop_conn(token);
                return;
            }
            Fate::Drop => {
                self.drop_conn(token);
                return;
            }
            Fate::Keep => {}
        }
        let mut read_ns = read_anchor.map_or(0, elapsed_ns);
        for inbound in frames {
            self.dispatch(token, inbound.seq, &inbound.frame, read_ns);
            read_ns = 0;
        }
        self.pump(token);
        self.flush_conn(token);
    }

    /// Releases messages parked behind the flow-control caps: inline
    /// responses (pings, protocol errors) free pipeline slots as they are
    /// dispatched, so parsing and dispatch loop until the caps genuinely
    /// bind (worker slots full or outbox over budget) or the buffer is
    /// drained.
    fn pump(&mut self, token: u64) {
        loop {
            let ready = {
                let Some(entry) = self.conns.get_mut(&token) else {
                    return;
                };
                match entry.conn.take_ready() {
                    Ok(ready) => ready,
                    Err(_fatal) => {
                        self.shared.metrics.protocol_errors.inc();
                        self.drop_conn(token);
                        return;
                    }
                }
            };
            if ready.is_empty() {
                return;
            }
            for inbound in ready {
                // Parked frames were fully buffered long ago; their read
                // time is indistinguishable from the park, charge zero.
                self.dispatch(token, inbound.seq, &inbound.frame, 0);
            }
        }
    }

    /// Routes one decoded request: inline answers on the loop, store work
    /// to the pool, BUSY under admission control. `read_ns` is the time
    /// the request's bytes spent arriving (zero when it rode a burst).
    fn dispatch(&mut self, token: u64, seq: u64, frame: &[u8], read_ns: u64) {
        let parse_started = Instant::now();
        let decoded = decode_request(frame);
        let parse_ns = elapsed_ns(parse_started);
        // Inline answers start their stage clock here: queue and work are
        // zero by definition (no worker involved).
        let respond_inline =
            |loop_: &mut Self, token: u64, seq: u64, tag: &'static str, resp: &Response| {
                if let Some(entry) = loop_.conns.get_mut(&token) {
                    entry
                        .conn
                        .push_response(seq, to_message(&encode_response(resp)));
                    entry
                        .traces
                        .insert(seq, ReqTrace::inline(tag, read_ns, parse_ns));
                }
            };
        match decoded {
            Err(e) => {
                // Bad frame, sound framing: answer and keep the
                // connection (matches the blocking server's contract).
                respond_inline(
                    self,
                    token,
                    seq,
                    "invalid",
                    &Response::Err(format!("bad request: {e}")),
                );
            }
            Ok(Request::Ping) => {
                respond_inline(self, token, seq, "ping", &Response::Pong);
            }
            Ok(Request::Shutdown) => {
                respond_inline(self, token, seq, "shutdown", &Response::Shutdown);
                if let Some(entry) = self.conns.get_mut(&token) {
                    entry.conn.close_after_flush();
                }
                self.shared.begin_shutdown();
            }
            Ok(req) => {
                let tag = request_tag(&req);
                let dataset = request_dataset(&req).map(str::to_string);
                if let (Some(ds), cap @ 1..) = (&dataset, self.config.dataset_inflight) {
                    let inflight = self.dataset_inflight.get(ds).copied().unwrap_or(0);
                    if inflight >= cap {
                        self.shared.metrics.shed_requests.inc();
                        respond_inline(
                            self,
                            token,
                            seq,
                            tag,
                            &Response::Busy(format!(
                                "dataset '{ds}' at its admission limit ({cap} in flight)"
                            )),
                        );
                        return;
                    }
                }
                // Watch registrations turn into connection state; the cap
                // is checked here, on the loop, counting registrations
                // still in flight so a pipelined burst cannot overshoot.
                let work = if let Request::Watch {
                    dataset: ds,
                    kind,
                    query,
                    confidence,
                    time,
                } = req
                {
                    let cap = self.config.max_watches_per_conn;
                    let over = self
                        .conns
                        .get(&token)
                        .map(|e| e.watches.len() + e.pending_watches >= cap)
                        .unwrap_or(true);
                    if over {
                        respond_inline(
                            self,
                            token,
                            seq,
                            tag,
                            &Response::Err(format!("watch limit reached ({cap} per connection)")),
                        );
                        return;
                    }
                    let watch_id = self.next_watch_id;
                    self.next_watch_id += 1;
                    if let Some(entry) = self.conns.get_mut(&token) {
                        entry.pending_watches += 1;
                    }
                    Work::WatchRegister {
                        watch_id,
                        spec: Arc::new(WatchSpec {
                            dataset: ds,
                            kind,
                            query,
                            confidence,
                            time,
                        }),
                    }
                } else {
                    Work::Req(req)
                };
                if let Some(ds) = &dataset {
                    *self.dataset_inflight.entry(ds.clone()).or_insert(0) += 1;
                }
                self.shared.metrics.requests.inc();
                if self
                    .job_tx
                    .send(Job {
                        token,
                        seq,
                        dataset,
                        work,
                        tag,
                        read_ns,
                        parse_ns,
                        t_dispatched: Instant::now(),
                    })
                    .is_err()
                {
                    // Workers gone (shutdown race): answer what we can.
                    respond_inline(
                        self,
                        token,
                        seq,
                        tag,
                        &Response::Err("server stopping".into()),
                    );
                }
            }
        }
    }

    fn drain_completions(&mut self) {
        loop {
            match self.done_rx.try_recv() {
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return,
                Ok(done) => {
                    if let Some(ds) = &done.dataset {
                        if let Some(n) = self.dataset_inflight.get_mut(ds) {
                            *n -= 1;
                            if *n == 0 {
                                self.dataset_inflight.remove(ds);
                            }
                        }
                    }
                    match done.delivery {
                        Delivery::Lifecycle => {
                            // Cadence anchors on completion: a pass slower
                            // than the interval never stacks a backlog.
                            self.lifecycle_inflight = false;
                            self.last_lifecycle = Instant::now();
                        }
                        Delivery::Push { watch_id } => {
                            self.deliver_push(done.token, watch_id, done.message);
                        }
                        Delivery::Response { seq } => {
                            if let Some(entry) = self.conns.get_mut(&done.token) {
                                if done.tag == "watch" {
                                    entry.pending_watches = entry.pending_watches.saturating_sub(1);
                                }
                                if let Some((id, spec)) = done.register_watch {
                                    entry.watches.push(WatchState {
                                        id,
                                        spec,
                                        inflight: false,
                                        dirty: false,
                                    });
                                }
                                if let Some(message) = done.message {
                                    entry.conn.push_response(seq, message);
                                }
                                entry.traces.insert(
                                    seq,
                                    ReqTrace {
                                        tag: done.tag,
                                        read_ns: done.read_ns,
                                        parse_ns: done.parse_ns,
                                        queue_ns: done.queue_ns,
                                        work_ns: done.work_ns,
                                        t_queued: Instant::now(),
                                        t_first_write: None,
                                        slow: done.slow,
                                    },
                                );
                            }
                            // The completion freed a pipeline slot (and
                            // flushing may free budget): release parked
                            // messages.
                            self.pump(done.token);
                            self.flush_conn(done.token);
                            self.pump(done.token);
                            self.maybe_close(done.token);
                        }
                    }
                    // A sealed ingest re-evaluates every watch on its
                    // series (coalesced while one is already in flight).
                    if let Some((dataset, kind_tag)) = done.ingested {
                        self.notify_watchers(&dataset, kind_tag);
                    }
                }
            }
        }
    }

    /// Lands one watch evaluation: inject the push if the subscription
    /// still exists and the peer is keeping up, shed the subscriber if it
    /// is not, and re-evaluate immediately when ingests landed meanwhile.
    fn deliver_push(&mut self, token: u64, watch_id: u64, message: Option<Payload>) {
        let write_budget = self.config.write_budget;
        let Some(entry) = self.conns.get_mut(&token) else {
            return; // connection closed while the eval ran
        };
        let Some(watch) = entry.watches.iter_mut().find(|w| w.id == watch_id) else {
            return;
        };
        watch.inflight = false;
        let redo = std::mem::take(&mut watch.dirty);
        let spec = watch.spec.clone();
        if let Some(message) = message {
            if entry.conn.queued_bytes() > write_budget {
                // The subscriber is not draining its pushes; holding them
                // would grow the outbox without bound. Same exit as an
                // over-limit arrival: explicit BUSY, clean close.
                self.lobs.watch_shed.inc();
                entry.watches.clear();
                entry
                    .conn
                    .inject_unsolicited(to_message(&encode_response(&Response::Busy(
                        "watch subscriber too slow".into(),
                    ))));
                entry.conn.close_after_flush();
                self.flush_conn(token);
                self.maybe_close(token);
                return;
            }
            entry.conn.inject_unsolicited(message);
            entry.last_activity = Instant::now();
            self.lobs.watch_pushes.inc();
            self.flush_conn(token);
        }
        if redo {
            self.spawn_watch_eval(token, watch_id, spec);
        }
    }

    /// Queues one evaluation job for a registered watch and marks it in
    /// flight.
    fn spawn_watch_eval(&mut self, token: u64, watch_id: u64, spec: Arc<WatchSpec>) {
        let sent = self
            .job_tx
            .send(Job {
                token,
                seq: 0,
                dataset: None, // pushes bypass per-dataset admission
                work: Work::WatchEval { watch_id, spec },
                tag: "watch",
                read_ns: 0,
                parse_ns: 0,
                t_dispatched: Instant::now(),
            })
            .is_ok();
        if sent {
            if let Some(watch) = self
                .conns
                .get_mut(&token)
                .and_then(|e| e.watches.iter_mut().find(|w| w.id == watch_id))
            {
                watch.inflight = true;
            }
        }
    }

    /// Fans one sealed ingest out to every live watch on its series.
    fn notify_watchers(&mut self, dataset: &str, kind_tag: u16) {
        let mut due: Vec<(u64, u64, Arc<WatchSpec>)> = Vec::new();
        for (&token, entry) in self.conns.iter_mut() {
            if entry.conn.closing() {
                continue;
            }
            for watch in entry.watches.iter_mut() {
                if watch.spec.dataset == dataset && watch.spec.kind.tag() == kind_tag {
                    if watch.inflight {
                        watch.dirty = true; // coalesce
                    } else {
                        due.push((token, watch.id, watch.spec.clone()));
                    }
                }
            }
        }
        for (token, watch_id, spec) in due {
            self.spawn_watch_eval(token, watch_id, spec);
        }
    }

    /// Writes as much of the outbox as the socket accepts. Completed
    /// messages close their request's stage clock (the `flushed` stamp).
    fn flush_conn(&mut self, token: u64) {
        let mut finished: Vec<ReqTrace> = Vec::new();
        let dead = {
            let Some(entry) = self.conns.get_mut(&token) else {
                return;
            };
            let mut dead = false;
            while let Some(chunk) = entry.conn.next_chunk() {
                let front = entry.conn.front_seq();
                match entry.stream.write(chunk) {
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                    Ok(0) => break,
                    Ok(n) => {
                        let now = Instant::now();
                        if let Some(trace) = front.and_then(|s| entry.traces.get_mut(&s)) {
                            trace.t_first_write.get_or_insert(now);
                        }
                        if let Some(seq) = entry.conn.advance(n) {
                            if let Some(trace) = entry.traces.remove(&seq) {
                                finished.push(trace);
                            }
                        }
                        entry.last_activity = Instant::now();
                    }
                }
            }
            self.shared
                .metrics
                .bump_queued_high_water(entry.conn.queued_bytes());
            dead
        };
        let flushed_at = Instant::now();
        for trace in finished {
            self.finish_trace(trace, flushed_at);
        }
        if dead {
            self.drop_conn(token);
        }
    }

    /// Records a fully flushed request into the per-tag stage and total
    /// histograms, and emits the slow-query record when it qualifies.
    fn finish_trace(&self, trace: ReqTrace, flushed_at: Instant) {
        let first_write = trace.t_first_write.unwrap_or(flushed_at);
        let queued_ns =
            u64::try_from((first_write - trace.t_queued).as_nanos()).unwrap_or(u64::MAX);
        let flush_ns = u64::try_from((flushed_at - first_write).as_nanos()).unwrap_or(u64::MAX);
        let stages = [
            trace.read_ns,
            trace.parse_ns,
            trace.queue_ns,
            trace.work_ns,
            queued_ns,
            flush_ns,
        ];
        let total_ns: u64 = stages.iter().sum();
        let cells = self.robs.cells(trace.tag);
        cells.completed.inc();
        cells.total_ns.record(total_ns);
        for (hist, ns) in cells.stage_ns.iter().zip(stages) {
            hist.record(ns);
        }
        if let Some(threshold) = self.config.slow_query {
            if total_ns >= u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX) {
                let (dataset, query, windows) = match &trace.slow {
                    Some(m) => (m.dataset.as_str(), m.query.as_str(), m.windows),
                    None => ("-", "-", 0),
                };
                slog!(
                    LogLevel::Warn,
                    "slow_query",
                    tag = trace.tag,
                    dataset = dataset,
                    query = query,
                    windows = windows,
                    total_us = total_ns / 1_000,
                    read_us = trace.read_ns / 1_000,
                    parse_us = trace.parse_ns / 1_000,
                    queue_us = trace.queue_ns / 1_000,
                    work_us = trace.work_ns / 1_000,
                    queued_us = queued_ns / 1_000,
                    flush_us = flush_ns / 1_000
                );
            }
        }
    }

    fn maybe_close(&mut self, token: u64) {
        let closable = self
            .conns
            .get(&token)
            .map(|e| e.conn.closable())
            .unwrap_or(false);
        if closable {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(entry) = self.conns.remove(&token) {
            let _ = self
                .interest
                .deregister(&mut self.poller, entry.stream.as_raw_fd());
            // entry.stream drops here, closing the fd after deregistration.
        }
        self.shared
            .metrics
            .active_conns
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    // ---- timers, interest, shutdown ----------------------------------

    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        let mut doomed: Vec<(u64, bool)> = Vec::new();
        for (&token, entry) in &self.conns {
            // The slow-loris deadline only applies while we are actually
            // waiting on the peer: a read paused by our own backpressure
            // (outbox over budget, pipeline full) is not the peer's fault.
            if let (Some(started), true) = (entry.frame_started, entry.conn.wants_read()) {
                if now.saturating_duration_since(started) >= self.config.read_timeout {
                    doomed.push((token, true));
                    continue;
                }
            }
            // A closing connection that stopped making write progress (a
            // shed peer that never reads its BUSY, say) may not hold its
            // slot past the read timeout either.
            if entry.conn.closing()
                && !entry.conn.closable()
                && now.saturating_duration_since(entry.last_activity) >= self.config.read_timeout
            {
                doomed.push((token, true));
                continue;
            }
            // Live subscriptions are legitimately quiet between pushes;
            // only watch-free connections are reaped as idle.
            if let Some(idle) = self.config.idle_timeout {
                if entry.conn.idle()
                    && entry.watches.is_empty()
                    && now.saturating_duration_since(entry.last_activity) >= idle
                {
                    doomed.push((token, false));
                }
            }
        }
        for (token, was_read) in doomed {
            let cell = if was_read {
                &self.shared.metrics.read_timeouts
            } else {
                &self.shared.metrics.idle_timeouts
            };
            cell.inc();
            self.drop_conn(token);
        }
    }

    /// Aligns poller interest with each connection's current wishes.
    fn refresh_interest(&mut self) {
        for (&token, entry) in &self.conns {
            let wants_read = entry.conn.wants_read() && !entry.peer_done;
            let wants_write = entry.conn.wants_write();
            let interest = match (wants_read, wants_write) {
                (true, true) => Interest::BOTH,
                (true, false) => Interest::READ,
                (false, true) => Interest::WRITE,
                // Parked (pipeline full, nothing to write yet): only
                // error/hang-up wakes us — a level-triggered read backlog
                // we refuse to consume must not spin the loop. Progress
                // resumes when a worker completion arrives via the waker.
                (false, false) => Interest::NONE,
            };
            match self
                .interest
                .ensure(&mut self.poller, entry.stream.as_raw_fd(), token, interest)
            {
                Ok(false) => self.lobs.reregisters_elided.inc(),
                Ok(true) if interest == Interest::NONE => self.lobs.parked.inc(),
                _ => {}
            }
        }
    }

    fn enter_shutdown(&mut self) {
        self.shutting_down = true;
        self.shutdown_deadline = Some(Instant::now() + self.config.shutdown_grace);
        let _ = self
            .interest
            .deregister(&mut self.poller, self.listener.as_raw_fd());
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(entry) = self.conns.get_mut(&token) {
                if !entry.conn.closing() {
                    // Frame-boundary abort: finish a half-written frame,
                    // drop everything not yet started.
                    entry.conn.abort_at_boundary();
                }
            }
            self.flush_conn(token);
            self.maybe_close(token);
        }
    }
}

/// The dataset a request is charged against for admission control.
fn request_dataset(req: &Request) -> Option<&str> {
    match req {
        Request::Query { dataset, .. }
        | Request::Estimate { dataset, .. }
        | Request::EstimateCov { dataset, .. }
        | Request::Watch { dataset, .. }
        | Request::PolicySet { dataset, .. }
        | Request::Ingest { dataset, .. } => Some(dataset),
        Request::PolicyShow { .. }
        | Request::List
        | Request::Stats
        | Request::Metrics
        | Request::Ping
        | Request::Shutdown => None,
    }
}

/// Answers an ingest and additionally names the `(dataset, kind tag)`
/// series a successful batch sealed into — the loop re-evaluates watches
/// on that series. [`handle_request`] shares this and drops the series.
fn ingest_response(
    store: &Store,
    dataset: &str,
    ts: u64,
    frame: &[u8],
) -> (Response, Option<(String, u16)>) {
    match decode_summary(frame) {
        Err(e) => (Response::Err(format!("bad batch frame: {e}")), None),
        Ok(batch) => match store.ingest(dataset, ts, batch) {
            Err(e) => (Response::Err(e.to_string()), None),
            Ok(window) => {
                let series = (window.key.dataset.clone(), window.key.kind.tag());
                (
                    Response::Ingest {
                        level: window.key.level,
                        start: window.key.start,
                        items: window.summary.item_count() as u64,
                    },
                    Some(series),
                )
            }
        },
    }
}

/// Dispatches one decoded request against the store. Pure: no I/O beyond
/// the store itself, so it is directly unit-testable without sockets.
pub fn handle_request(store: &Store, req: Request) -> Response {
    match req {
        Request::Query {
            dataset,
            kind,
            range,
            time,
        } => {
            let answer = store.query(&dataset, kind, &range, time);
            Response::Query {
                value: answer.value,
                windows: answer.windows,
                cached: answer.cached,
            }
        }
        Request::Estimate {
            dataset,
            kind,
            query,
            confidence,
            time,
        } => match store.estimate(&dataset, kind, &query, confidence, time) {
            Err(e) => Response::Err(e.to_string()),
            Ok(answer) => Response::Estimate {
                estimate: answer.estimate,
                windows: answer.windows,
                cached: answer.cached,
            },
        },
        Request::EstimateCov {
            dataset,
            kind,
            query,
            confidence,
            time,
        } => match store.estimate_with_coverage(&dataset, kind, &query, confidence, time) {
            Err(e) => Response::Err(e.to_string()),
            Ok((answer, coverage)) => Response::EstimateCov {
                estimate: answer.estimate,
                windows: answer.windows,
                cached: answer.cached,
                coverage,
            },
        },
        // The daemon intercepts watches before they reach this dispatcher
        // (registration lives on the connection); anyone else calling in
        // has no connection to push to.
        Request::Watch { .. } => Response::Err("watch requires a daemon connection".into()),
        Request::PolicySet { dataset, policy } => match store.set_policy(&dataset, policy) {
            Err(e) => Response::Err(e.to_string()),
            Ok(()) => Response::PolicySet,
        },
        Request::PolicyShow { dataset } => Response::Policies(match dataset {
            None => store.policies(),
            Some(d) => store.policy(&d).map(|p| (d, p)).into_iter().collect(),
        }),
        Request::Ingest { dataset, ts, frame } => ingest_response(store, &dataset, ts, &frame).0,
        Request::List => Response::List(store.list()),
        Request::Stats => Response::Stats(store.stats()),
        Request::Metrics => Response::Metrics(store.obs().snapshot()),
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Shutdown,
    }
}
