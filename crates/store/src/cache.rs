//! LRU cache for query answers.
//!
//! Keys embed the catalog snapshot **version**, so a cache entry can never
//! serve a stale answer: any ingest or compaction bumps the version and all
//! older entries simply stop being addressable (and age out of the LRU).
//! The query itself is keyed by its **canonical wire bytes**
//! ([`sas_summaries::Query::canonical_bytes`]): equivalent spellings — a
//! full-domain box and `Total`, a point and its degenerate box, re-ordered
//! multi-range boxes — share one cache line. Lookups and inserts take a
//! short mutex; the summaries themselves are never touched under the lock.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use sas_summaries::Estimate;

/// What a cached answer is keyed by: snapshot version plus the full query
/// coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot version the answer was computed against.
    pub version: u64,
    /// Dataset name.
    pub dataset: String,
    /// Summary kind wire tag.
    pub kind_tag: u16,
    /// Canonical wire bytes of the query.
    pub query: Vec<u8>,
    /// Bit pattern of the requested confidence, or [`PLAIN_CONFIDENCE`]
    /// for the value-only legacy path (a NaN pattern no real confidence
    /// can collide with).
    pub confidence_bits: u64,
    /// Optional window-time filter.
    pub time: Option<(u64, u64)>,
}

/// The `confidence_bits` sentinel for the value-only (pre-estimate) query
/// path.
pub const PLAIN_CONFIDENCE: u64 = u64::MAX;

/// A cached answer: either a plain value (legacy `REQ_QUERY` path) or a
/// full estimate, each with the window count it consulted (both pure
/// functions of the versioned key, so a hit answers the whole query
/// without touching the catalog).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachedAnswer {
    /// Value-only answer.
    Plain(f64, u64),
    /// Estimate with bounds.
    Estimate(Estimate, u64),
}

#[derive(Debug, Default)]
struct Inner {
    /// key → (answer, recency stamp)
    map: HashMap<CacheKey, (CachedAnswer, u64)>,
    /// recency stamp → key (oldest first; stamps are unique)
    order: BTreeMap<u64, CacheKey>,
    next_stamp: u64,
}

/// A fixed-capacity LRU map from query coordinates to answers.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` answers (0 disables it).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up an answer, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let (value, old_stamp) = match inner.map.get_mut(key) {
            None => return None,
            Some((value, at)) => {
                let old = *at;
                *at = stamp;
                (*value, old)
            }
        };
        inner.order.remove(&old_stamp);
        inner.order.insert(stamp, key.clone());
        Some(value)
    }

    /// Stores an answer, evicting the least-recently-used entry at
    /// capacity.
    pub fn put(&self, key: CacheKey, value: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if let Some((_, old_stamp)) = inner.map.insert(key.clone(), (value, stamp)) {
            inner.order.remove(&old_stamp);
        }
        inner.order.insert(stamp, key);
        while inner.map.len() > self.capacity {
            let (&oldest, _) = inner.order.iter().next().expect("non-empty order index");
            let victim = inner.order.remove(&oldest).expect("indexed key");
            inner.map.remove(&victim);
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sas_summaries::Query;

    fn key(version: u64, lo: u64) -> CacheKey {
        CacheKey {
            version,
            dataset: "d".into(),
            kind_tag: 1,
            query: Query::interval(lo, lo + 10).canonical_bytes().unwrap(),
            confidence_bits: PLAIN_CONFIDENCE,
            time: None,
        }
    }

    fn plain(v: f64) -> CachedAnswer {
        CachedAnswer::Plain(v, 1)
    }

    #[test]
    fn hit_miss_and_version_isolation() {
        let cache = QueryCache::new(8);
        assert_eq!(cache.get(&key(1, 0)), None);
        cache.put(key(1, 0), plain(42.0));
        assert_eq!(cache.get(&key(1, 0)), Some(plain(42.0)));
        // A new snapshot version misses — stale answers are unaddressable.
        assert_eq!(cache.get(&key(2, 0)), None);
    }

    #[test]
    fn canonical_spellings_share_a_line() {
        let cache = QueryCache::new(8);
        let spellings = [
            Query::BoxRange(vec![(0, u64::MAX)]),
            Query::Total,
            Query::HierarchyNode {
                level: 64,
                index: 0,
            },
        ];
        let mk = |q: &Query| CacheKey {
            version: 1,
            dataset: "d".into(),
            kind_tag: 1,
            query: q.canonical_bytes().unwrap(),
            confidence_bits: PLAIN_CONFIDENCE,
            time: None,
        };
        cache.put(mk(&spellings[0]), plain(7.0));
        for q in &spellings {
            assert_eq!(cache.get(&mk(q)), Some(plain(7.0)), "{q}");
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn confidence_isolates_estimates_from_plain_answers() {
        let cache = QueryCache::new(8);
        let mk = |bits: u64| CacheKey {
            confidence_bits: bits,
            ..key(1, 0)
        };
        cache.put(mk(PLAIN_CONFIDENCE), plain(5.0));
        assert_eq!(cache.get(&mk(0.95f64.to_bits())), None);
        let est = CachedAnswer::Estimate(
            Estimate {
                value: 5.0,
                variance: 1.0,
                lower: 3.0,
                upper: 8.0,
                confidence: 0.95,
            },
            2,
        );
        cache.put(mk(0.95f64.to_bits()), est);
        assert_eq!(cache.get(&mk(0.95f64.to_bits())), Some(est));
        assert_eq!(cache.get(&mk(PLAIN_CONFIDENCE)), Some(plain(5.0)));
        // A different confidence is a different answer.
        assert_eq!(cache.get(&mk(0.5f64.to_bits())), None);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = QueryCache::new(2);
        cache.put(key(1, 0), plain(0.0));
        cache.put(key(1, 100), plain(1.0));
        // Touch key 0 so key 100 is the LRU victim.
        assert_eq!(cache.get(&key(1, 0)), Some(plain(0.0)));
        cache.put(key(1, 200), plain(2.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1, 100)), None, "LRU entry evicted");
        assert_eq!(cache.get(&key(1, 0)), Some(plain(0.0)));
        assert_eq!(cache.get(&key(1, 200)), Some(plain(2.0)));
    }

    #[test]
    fn reinsert_updates_value_without_growing() {
        let cache = QueryCache::new(2);
        cache.put(key(1, 0), plain(1.0));
        cache.put(key(1, 0), plain(2.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1, 0)), Some(plain(2.0)));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = QueryCache::new(0);
        cache.put(key(1, 0), plain(1.0));
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1, 0)), None);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(QueryCache::new(64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        cache.put(key(t, (i % 40) * 100), plain(i as f64));
                        cache.get(&key(t, ((i + 7) % 40) * 100));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
    }
}
