//! LRU cache for range-query answers.
//!
//! Keys embed the catalog snapshot **version**, so a cache entry can never
//! serve a stale answer: any ingest or compaction bumps the version and all
//! older entries simply stop being addressable (and age out of the LRU).
//! Lookups and inserts take a short mutex; the summaries themselves are
//! never touched under the lock.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// What a cached answer is keyed by: snapshot version plus the full query
/// coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot version the answer was computed against.
    pub version: u64,
    /// Dataset name.
    pub dataset: String,
    /// Summary kind wire tag.
    pub kind_tag: u16,
    /// Query range, one `(lo, hi)` per axis.
    pub range: Vec<(u64, u64)>,
    /// Optional window-time filter.
    pub time: Option<(u64, u64)>,
}

/// A cached query answer: the estimate plus the window count it consulted
/// (both pure functions of the versioned key, so a hit answers the whole
/// query without touching the catalog).
pub type CachedAnswer = (f64, u64);

#[derive(Debug, Default)]
struct Inner {
    /// key → (answer, recency stamp)
    map: HashMap<CacheKey, (CachedAnswer, u64)>,
    /// recency stamp → key (oldest first; stamps are unique)
    order: BTreeMap<u64, CacheKey>,
    next_stamp: u64,
}

/// A fixed-capacity LRU map from query coordinates to answers.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` answers (0 disables it).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up an answer, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let (value, old_stamp) = match inner.map.get_mut(key) {
            None => return None,
            Some((value, at)) => {
                let old = *at;
                *at = stamp;
                (*value, old)
            }
        };
        inner.order.remove(&old_stamp);
        inner.order.insert(stamp, key.clone());
        Some(value)
    }

    /// Stores an answer, evicting the least-recently-used entry at
    /// capacity.
    pub fn put(&self, key: CacheKey, value: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if let Some((_, old_stamp)) = inner.map.insert(key.clone(), (value, stamp)) {
            inner.order.remove(&old_stamp);
        }
        inner.order.insert(stamp, key);
        while inner.map.len() > self.capacity {
            let (&oldest, _) = inner.order.iter().next().expect("non-empty order index");
            let victim = inner.order.remove(&oldest).expect("indexed key");
            inner.map.remove(&victim);
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(version: u64, lo: u64) -> CacheKey {
        CacheKey {
            version,
            dataset: "d".into(),
            kind_tag: 1,
            range: vec![(lo, lo + 10)],
            time: None,
        }
    }

    #[test]
    fn hit_miss_and_version_isolation() {
        let cache = QueryCache::new(8);
        assert_eq!(cache.get(&key(1, 0)), None);
        cache.put(key(1, 0), (42.0, 1));
        assert_eq!(cache.get(&key(1, 0)), Some((42.0, 1)));
        // A new snapshot version misses — stale answers are unaddressable.
        assert_eq!(cache.get(&key(2, 0)), None);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = QueryCache::new(2);
        cache.put(key(1, 0), (0.0, 1));
        cache.put(key(1, 1), (1.0, 1));
        // Touch key 0 so key 1 is the LRU victim.
        assert_eq!(cache.get(&key(1, 0)), Some((0.0, 1)));
        cache.put(key(1, 2), (2.0, 1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1, 1)), None, "LRU entry evicted");
        assert_eq!(cache.get(&key(1, 0)), Some((0.0, 1)));
        assert_eq!(cache.get(&key(1, 2)), Some((2.0, 1)));
    }

    #[test]
    fn reinsert_updates_value_without_growing() {
        let cache = QueryCache::new(2);
        cache.put(key(1, 0), (1.0, 1));
        cache.put(key(1, 0), (2.0, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1, 0)), Some((2.0, 1)));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = QueryCache::new(0);
        cache.put(key(1, 0), (1.0, 1));
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1, 0)), None);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(QueryCache::new(64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        cache.put(key(t, i % 40), (i as f64, 1));
                        cache.get(&key(t, (i + 7) % 40));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
    }
}
