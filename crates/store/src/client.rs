//! Blocking client for the `sas serve` protocol — one TCP connection,
//! request/response in lockstep. Used by `sas client` and the integration
//! tests; scripts can hold one connection open across many queries.
//!
//! With a watch registered ([`Client::watch`]), the daemon interleaves
//! unsolicited `RESP_PUSH` frames with request replies on the same
//! connection. The lockstep exchange transparently buffers pushes that
//! arrive while it waits for its reply; [`Client::next_update`] drains the
//! buffer first and then blocks for the next push.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use sas_codec::{open_frame, proto, CodecError};
use sas_summaries::{Estimate, Query, SummaryKind};

use crate::policy::{Coverage, Policy};
use crate::window::Level;
use crate::wire::{
    decode_push, decode_response, encode_request, is_push, Request, Response, WatchUpdate,
    WindowRow,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The daemon's bytes did not decode.
    Codec(CodecError),
    /// The daemon answered, with an error message.
    Server(String),
    /// The daemon refused the request because it is overloaded; retrying
    /// later is reasonable (unlike [`ClientError::Server`], this is not
    /// the request's fault).
    Busy(String),
    /// The daemon closed the connection mid-exchange.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Codec(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Busy(msg) => write!(f, "server busy: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// A query answer as reported by the daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteAnswer {
    /// The estimate.
    pub value: f64,
    /// Windows consulted.
    pub windows: u64,
    /// Whether the daemon's LRU cache served it.
    pub cached: bool,
}

/// A query answer with error bounds as reported by the daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteEstimate {
    /// The estimate with its bounds.
    pub estimate: Estimate,
    /// Windows consulted.
    pub windows: u64,
    /// Whether the daemon's LRU cache served it.
    pub cached: bool,
}

/// Where an ingested batch landed.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestAck {
    /// Window level.
    pub level: Level,
    /// Window start tick.
    pub start: u64,
    /// Items now in the window.
    pub items: u64,
}

/// A query answer with its gap report, as reported by the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteEstimateCov {
    /// The estimate with its bounds.
    pub estimate: Estimate,
    /// Windows consulted.
    pub windows: u64,
    /// Whether the daemon's LRU cache served it.
    pub cached: bool,
    /// Which stretches of the requested span had no data, and why.
    pub coverage: Coverage,
}

/// A connected client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Push frames that arrived while an exchange was waiting for its
    /// reply; served to [`Client::next_update`] in arrival order.
    pending_pushes: VecDeque<WatchUpdate>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            pending_pushes: VecDeque::new(),
        })
    }

    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        let frame = encode_request(req);
        let request_tag = open_frame(&frame).expect("self-encoded frame").kind;
        proto::write_message(&mut self.writer, &frame)?;
        loop {
            let reply = proto::read_message(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
            // A push racing the reply is not the reply: buffer it and keep
            // reading — responses stay in lockstep with requests.
            if is_push(&reply) {
                self.pending_pushes.push_back(decode_push(&reply)?);
                continue;
            }
            return match decode_response(&reply, request_tag)? {
                Response::Err(msg) => Err(ClientError::Server(msg)),
                Response::Busy(msg) => Err(ClientError::Busy(msg)),
                resp => Ok(resp),
            };
        }
    }

    /// Range query against a dataset series.
    pub fn query(
        &mut self,
        dataset: &str,
        kind: SummaryKind,
        range: &[(u64, u64)],
        time: Option<(u64, u64)>,
    ) -> Result<RemoteAnswer, ClientError> {
        match self.exchange(&Request::Query {
            dataset: dataset.to_string(),
            kind,
            range: range.to_vec(),
            time,
        })? {
            Response::Query {
                value,
                windows,
                cached,
            } => Ok(RemoteAnswer {
                value,
                windows,
                cached,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Query with error bounds against a dataset series (the
    /// `REQ_ESTIMATE` protocol; older daemons answer only
    /// [`Client::query`]).
    pub fn estimate(
        &mut self,
        dataset: &str,
        kind: SummaryKind,
        query: &Query,
        confidence: f64,
        time: Option<(u64, u64)>,
    ) -> Result<RemoteEstimate, ClientError> {
        match self.exchange(&Request::Estimate {
            dataset: dataset.to_string(),
            kind,
            query: query.clone(),
            confidence,
            time,
        })? {
            Response::Estimate {
                estimate,
                windows,
                cached,
            } => Ok(RemoteEstimate {
                estimate,
                windows,
                cached,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// [`Client::estimate`] plus a gap report: which stretches of the
    /// requested span were missing or expired by retention (the
    /// `REQ_ESTIMATE_COV` protocol; older daemons answer only
    /// [`Client::estimate`]).
    pub fn estimate_cov(
        &mut self,
        dataset: &str,
        kind: SummaryKind,
        query: &Query,
        confidence: f64,
        time: Option<(u64, u64)>,
    ) -> Result<RemoteEstimateCov, ClientError> {
        match self.exchange(&Request::EstimateCov {
            dataset: dataset.to_string(),
            kind,
            query: query.clone(),
            confidence,
            time,
        })? {
            Response::EstimateCov {
                estimate,
                windows,
                cached,
                coverage,
            } => Ok(RemoteEstimateCov {
                estimate,
                windows,
                cached,
                coverage,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Registers a live subscription for a query on this connection and
    /// returns its daemon-assigned watch id. Afterwards every ingest into
    /// the watched series pushes a [`WatchUpdate`]; read them with
    /// [`Client::next_update`].
    pub fn watch(
        &mut self,
        dataset: &str,
        kind: SummaryKind,
        query: &Query,
        confidence: f64,
        time: Option<(u64, u64)>,
    ) -> Result<u64, ClientError> {
        match self.exchange(&Request::Watch {
            dataset: dataset.to_string(),
            kind,
            query: query.clone(),
            confidence,
            time,
        })? {
            Response::Watch { watch_id } => Ok(watch_id),
            other => Err(unexpected(other)),
        }
    }

    /// The next push for any watch on this connection: buffered pushes
    /// first, then a blocking read. A non-push frame here is a protocol
    /// violation (the lockstep client has no outstanding request).
    pub fn next_update(&mut self) -> Result<WatchUpdate, ClientError> {
        if let Some(update) = self.pending_pushes.pop_front() {
            return Ok(update);
        }
        let reply = proto::read_message(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        if is_push(&reply) {
            return Ok(decode_push(&reply)?);
        }
        // BUSY here is the daemon shedding this subscriber.
        match decode_response(&reply, proto::REQ_WATCH) {
            Ok(Response::Busy(msg)) => Err(ClientError::Busy(msg)),
            _ => Err(ClientError::Server("unsolicited non-push frame".into())),
        }
    }

    /// Installs (or, for an empty policy, clears) a dataset's lifecycle
    /// policy.
    pub fn set_policy(&mut self, dataset: &str, policy: Policy) -> Result<(), ClientError> {
        match self.exchange(&Request::PolicySet {
            dataset: dataset.to_string(),
            policy,
        })? {
            Response::PolicySet => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Reads back installed lifecycle policies: all of them, or one
    /// dataset's (an empty list when it has none).
    pub fn policies(
        &mut self,
        dataset: Option<&str>,
    ) -> Result<Vec<(String, Policy)>, ClientError> {
        match self.exchange(&Request::PolicyShow {
            dataset: dataset.map(str::to_string),
        })? {
            Response::Policies(rows) => Ok(rows),
            other => Err(unexpected(other)),
        }
    }

    /// Sends a batch summary frame for the minute window containing `ts`.
    pub fn ingest(
        &mut self,
        dataset: &str,
        ts: u64,
        frame: Vec<u8>,
    ) -> Result<IngestAck, ClientError> {
        match self.exchange(&Request::Ingest {
            dataset: dataset.to_string(),
            ts,
            frame,
        })? {
            Response::Ingest {
                level,
                start,
                items,
            } => Ok(IngestAck {
                level,
                start,
                items,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Lists the daemon's windows.
    pub fn list(&mut self) -> Result<Vec<WindowRow>, ClientError> {
        match self.exchange(&Request::List)? {
            Response::List(rows) => Ok(rows),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches store statistics.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.exchange(&Request::Stats)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the daemon's full metric registry: counters plus latency
    /// histograms (request stages, compaction, recovery). Render with
    /// [`MetricsReport::to_prometheus`](sas_obs::MetricsReport::to_prometheus)
    /// or its TSV/JSON siblings.
    pub fn metrics(&mut self) -> Result<sas_obs::MetricsReport, ClientError> {
        match self.exchange(&Request::Metrics)? {
            Response::Metrics(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe: answered from the daemon's event loop without
    /// touching the store, so a `Pong` proves the loop is dispatching even
    /// when workers are saturated.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.exchange(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.exchange(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    ClientError::Server(format!("unexpected response {resp:?}"))
}
