//! Two-dimensional standard (tensor-product) Haar wavelet summary with
//! coefficient thresholding — the "Wavelet" baseline of Section 6.
//!
//! For a domain `2^bx × 2^by`, the orthonormal basis is the tensor product
//! of the 1-D Haar bases. Each input point contributes to
//! `(bx + 1)(by + 1)` coefficients (the scaling function plus one wavelet
//! per level on each axis) — exactly the `log X · log Y` per-point cost the
//! paper measures. After the transform, the `s` largest (normalized)
//! coefficients are retained.
//!
//! A box query is answered in `O(s)` time: for each retained coefficient
//! `c_{u,v}` the contribution is `c · U([a,b]) · V([c,d])`, where `U`/`V`
//! are the closed-form sums of the 1-D basis functions over the query's
//! side intervals.

use std::collections::HashMap;

use sas_sampling::product::SpatialData;
use sas_structures::product::BoxRange;

use crate::RangeSumSummary;

/// A 1-D Haar basis function over a `2^bits` domain: either the scaling
/// (constant) function or the wavelet at `level ∈ [1, bits]`, block `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Basis1D {
    Scaling,
    /// `level` ≥ 1: support is `[k·2^level, (k+1)·2^level)`, positive on the
    /// first half, negative on the second, magnitude `2^(−level/2)`.
    Wavelet {
        level: u32,
        k: u64,
    },
}

impl Basis1D {
    /// Value of the basis function at `x` (0 outside support).
    fn value(self, x: u64, bits: u32) -> f64 {
        match self {
            Basis1D::Scaling => 2.0_f64.powi(-(bits as i32) / 2) * scale_adjust(bits),
            Basis1D::Wavelet { level, k } => {
                if (x >> level) != k {
                    return 0.0;
                }
                let sign = if ((x >> (level - 1)) & 1) == 0 {
                    1.0
                } else {
                    -1.0
                };
                sign * 2.0_f64.powf(-(level as f64) / 2.0)
            }
        }
    }

    /// Sum of the basis function over the interval `[a, b]` (closed form).
    fn range_sum(self, a: u64, b: u64, bits: u32) -> f64 {
        if a > b {
            return 0.0;
        }
        match self {
            Basis1D::Scaling => {
                (b - a + 1) as f64 * 2.0_f64.powi(-(bits as i32) / 2) * scale_adjust(bits)
            }
            Basis1D::Wavelet { level, k } => {
                let lo = k << level;
                let half = 1u64 << (level - 1);
                let mid = lo + half; // first negative position
                let hi = lo + (1u64 << level) - 1;
                let pos = overlap(a, b, lo, mid - 1);
                let neg = overlap(a, b, mid, hi);
                (pos as f64 - neg as f64) * 2.0_f64.powf(-(level as f64) / 2.0)
            }
        }
    }
}

/// `2^(−bits/2)` is computed with integer `powi` for even bits; this factor
/// corrects odd bit counts (√2 adjustment).
fn scale_adjust(bits: u32) -> f64 {
    if bits % 2 == 1 {
        std::f64::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

/// Maximum range inner product of a 1-D basis function: `2^(level/2)` for a
/// wavelet at `level` (half its support, signed), `2^(bits/2)` for scaling.
fn level_scale(b: Basis1D, bits: u32) -> f64 {
    match b {
        Basis1D::Scaling => 2.0_f64.powf(bits as f64 / 2.0),
        Basis1D::Wavelet { level, .. } => 2.0_f64.powf(level as f64 / 2.0),
    }
}

/// Canonical tie-break key: coefficients of equal importance come out of a
/// hash map in arbitrary order, and summation order must be deterministic
/// for byte-stable encodings and bit-identical merged estimates.
fn basis_key(b: Basis1D) -> (u8, u32, u64) {
    match b {
        Basis1D::Scaling => (0, 0, 0),
        Basis1D::Wavelet { level, k } => (1, level, k),
    }
}

/// Sorts coefficients by descending range-sum impact with a canonical
/// tie-break (see [`basis_key`]).
fn sort_by_importance(coeffs: &mut [Coefficient], bits_x: u32, bits_y: u32) {
    let importance =
        |c: &Coefficient| c.value.abs() * level_scale(c.bx, bits_x) * level_scale(c.by, bits_y);
    coeffs.sort_by(|a, b| {
        importance(b).total_cmp(&importance(a)).then_with(|| {
            (basis_key(a.bx), basis_key(a.by)).cmp(&(basis_key(b.bx), basis_key(b.by)))
        })
    });
}

/// Size of `[a,b] ∩ [lo,hi]` over integers.
fn overlap(a: u64, b: u64, lo: u64, hi: u64) -> u64 {
    let l = a.max(lo);
    let h = b.min(hi);
    if l > h {
        0
    } else {
        h - l + 1
    }
}

/// A retained 2-D wavelet coefficient.
#[derive(Debug, Clone, Copy)]
struct Coefficient {
    bx: Basis1D,
    by: Basis1D,
    value: f64,
}

/// The thresholded 2-D Haar wavelet summary.
#[derive(Debug, Clone)]
pub struct WaveletSummary {
    coeffs: Vec<Coefficient>,
    bits_x: u32,
    bits_y: u32,
}

impl WaveletSummary {
    /// Builds the full transform of `data` over a `2^bits_x × 2^bits_y`
    /// domain and keeps the `s` largest coefficients by magnitude.
    ///
    /// # Panics
    /// Panics if any point lies outside the domain.
    pub fn build(data: &SpatialData, bits_x: u32, bits_y: u32, s: usize) -> Self {
        let mut acc: HashMap<(Basis1D, Basis1D), f64> = HashMap::new();
        for (wk, p) in data.keys.iter().zip(&data.points) {
            if wk.weight == 0.0 {
                continue;
            }
            let (x, y) = (p.coord(0), p.coord(1));
            if bits_x < 64 {
                assert!(x < (1u64 << bits_x), "x={x} outside 2^{bits_x} domain");
            }
            if bits_y < 64 {
                assert!(y < (1u64 << bits_y), "y={y} outside 2^{bits_y} domain");
            }
            let xs = basis_functions_at(x, bits_x);
            let ys = basis_functions_at(y, bits_y);
            for &(ub, uv) in &xs {
                if uv == 0.0 {
                    continue;
                }
                for &(vb, vv) in &ys {
                    if vv == 0.0 {
                        continue;
                    }
                    *acc.entry((ub, vb)).or_insert(0.0) += wk.weight * uv * vv;
                }
            }
        }
        let mut all: Vec<Coefficient> = acc
            .into_iter()
            .map(|((bx, by), value)| Coefficient { bx, by, value })
            .collect();
        // Threshold by *range-sum impact*, not raw L2 magnitude: a level-ℓ
        // coefficient contributes up to |c|·2^(ℓ/2)/2 to a range query (its
        // range inner product), so coarse coefficients matter far more for
        // range sums than pointwise L2 thresholding would suggest. This is
        // the standard normalization for selectivity-estimation wavelets
        // [Matias–Vitter–Wang].
        sort_by_importance(&mut all, bits_x, bits_y);
        all.truncate(s);
        Self {
            coeffs: all,
            bits_x,
            bits_y,
        }
    }

    /// Total number of coefficients that would exist without thresholding
    /// (diagnostic; the paper notes this reaches tens of millions).
    pub fn dense_coefficient_bound(data: &SpatialData, bits_x: u32, bits_y: u32) -> usize {
        data.len() * ((bits_x + 1) as usize) * ((bits_y + 1) as usize)
    }

    /// A copy keeping only the `s` largest coefficients. Cheap (coefficients
    /// are stored sorted by magnitude), so a single full transform can serve
    /// a whole summary-size sweep.
    pub fn truncated(&self, s: usize) -> Self {
        Self {
            coeffs: self.coeffs.iter().take(s).copied().collect(),
            bits_x: self.bits_x,
            bits_y: self.bits_y,
        }
    }

    /// Merges a summary of disjoint data by coefficient-wise addition — the
    /// Haar transform is linear, so the merged coefficients equal those of a
    /// transform over the union (restricted to the retained basis
    /// functions). The union of the two coefficient sets is kept, re-sorted
    /// by range-sum impact; truncate with [`WaveletSummary::truncated`] to
    /// restore a size budget.
    ///
    /// Fails (no mutation) if the domain geometries differ.
    pub fn try_merge(&mut self, other: Self) -> Result<(), String> {
        if (self.bits_x, self.bits_y) != (other.bits_x, other.bits_y) {
            return Err(format!(
                "wavelet domain mismatch: 2^{}×2^{} vs 2^{}×2^{}",
                self.bits_x, self.bits_y, other.bits_x, other.bits_y
            ));
        }
        let mut acc: HashMap<(Basis1D, Basis1D), f64> = self
            .coeffs
            .drain(..)
            .map(|c| ((c.bx, c.by), c.value))
            .collect();
        for c in other.coeffs {
            *acc.entry((c.bx, c.by)).or_insert(0.0) += c.value;
        }
        let mut all: Vec<Coefficient> = acc
            .into_iter()
            .map(|((bx, by), value)| Coefficient { bx, by, value })
            .collect();
        sort_by_importance(&mut all, self.bits_x, self.bits_y);
        self.coeffs = all;
        Ok(())
    }

    /// Writes the wire representation (see `sas-codec` for the framing).
    pub(crate) fn write_wire(&self, w: &mut sas_codec::Writer) {
        fn put_basis(w: &mut sas_codec::Writer, b: Basis1D) {
            match b {
                Basis1D::Scaling => {
                    w.put_u8(0);
                    w.put_u32(0);
                    w.put_u64(0);
                }
                Basis1D::Wavelet { level, k } => {
                    w.put_u8(1);
                    w.put_u32(level);
                    w.put_u64(k);
                }
            }
        }
        w.section(1, |w| {
            w.put_u32(self.bits_x);
            w.put_u32(self.bits_y);
        });
        w.section(2, |w| {
            w.put_u64(self.coeffs.len() as u64);
            for c in &self.coeffs {
                put_basis(w, c.bx);
                put_basis(w, c.by);
                w.put_f64(c.value);
            }
        });
    }

    /// Reads the wire representation, validating basis indices against the
    /// domain geometry (never panics).
    pub(crate) fn read_wire(r: &mut sas_codec::Reader<'_>) -> Result<Self, sas_codec::CodecError> {
        use sas_codec::CodecError;
        fn get_basis(r: &mut sas_codec::Reader<'_>, bits: u32) -> Result<Basis1D, CodecError> {
            let tag = r.get_u8()?;
            let level = r.get_u32()?;
            let k = r.get_u64()?;
            match tag {
                0 => Ok(Basis1D::Scaling),
                1 => {
                    if level == 0 || level > bits {
                        return Err(CodecError::Invalid(format!(
                            "wavelet level {level} outside [1, {bits}]"
                        )));
                    }
                    if bits < 64 && k >= 1u64 << (bits - level) {
                        return Err(CodecError::Invalid(format!(
                            "wavelet block {k} outside level-{level} domain"
                        )));
                    }
                    Ok(Basis1D::Wavelet { level, k })
                }
                t => Err(CodecError::Invalid(format!("unknown basis tag {t}"))),
            }
        }
        let mut meta = r.expect_section(1)?;
        let bits_x = meta.get_u32()?;
        let bits_y = meta.get_u32()?;
        meta.finish()?;
        if bits_x >= 64 || bits_y >= 64 {
            return Err(CodecError::Invalid(format!(
                "domain bits ({bits_x}, {bits_y}) too large"
            )));
        }
        let mut body = r.expect_section(2)?;
        let n = body.get_len(34)?; // 2 × (u8 + u32 + u64) + f64 per coefficient
        let mut coeffs = Vec::with_capacity(n);
        for _ in 0..n {
            let bx = get_basis(&mut body, bits_x)?;
            let by = get_basis(&mut body, bits_y)?;
            let value = body.get_finite_f64()?;
            coeffs.push(Coefficient { bx, by, value });
        }
        body.finish()?;
        Ok(Self {
            coeffs,
            bits_x,
            bits_y,
        })
    }
}

/// The `(bits+1)` basis functions with `x` in their support, with values.
fn basis_functions_at(x: u64, bits: u32) -> Vec<(Basis1D, f64)> {
    let mut out = Vec::with_capacity(bits as usize + 1);
    let scaling = Basis1D::Scaling;
    out.push((scaling, scaling.value(x, bits)));
    for level in 1..=bits {
        let b = Basis1D::Wavelet {
            level,
            k: x >> level,
        };
        out.push((b, b.value(x, bits)));
    }
    out
}

impl RangeSumSummary for WaveletSummary {
    fn estimate_box(&self, query: &BoxRange) -> f64 {
        if query.is_empty() {
            return 0.0;
        }
        // Clamp to the domain: queries may legitimately extend past it
        // (e.g. kd-tree cells tile the whole u64 space).
        let max_x = if self.bits_x < 64 {
            (1u64 << self.bits_x) - 1
        } else {
            u64::MAX
        };
        let max_y = if self.bits_y < 64 {
            (1u64 << self.bits_y) - 1
        } else {
            u64::MAX
        };
        let (ax, bx) = (query.sides[0].lo.min(max_x), query.sides[0].hi.min(max_x));
        let (ay, by) = (query.sides[1].lo.min(max_y), query.sides[1].hi.min(max_y));
        self.coeffs
            .iter()
            .map(|c| {
                c.value * c.bx.range_sum(ax, bx, self.bits_x) * c.by.range_sum(ay, by, self.bits_y)
            })
            .sum()
    }

    fn size_elements(&self) -> usize {
        self.coeffs.len()
    }

    fn name(&self) -> &'static str {
        "wavelet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, bits: u32, seed: u64) -> SpatialData {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 1u64 << bits;
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..side),
                    rng.gen_range(0..side),
                    rng.gen_range(0.5..5.0),
                )
            })
            .collect();
        SpatialData::from_xyw(&rows)
    }

    #[test]
    fn basis_orthonormal_1d() {
        let bits = 3;
        let n = 1u64 << bits;
        let mut fns = vec![Basis1D::Scaling];
        for level in 1..=bits {
            for k in 0..(n >> level) {
                fns.push(Basis1D::Wavelet { level, k });
            }
        }
        assert_eq!(fns.len() as u64, n);
        for (i, &u) in fns.iter().enumerate() {
            for (j, &v) in fns.iter().enumerate() {
                let dot: f64 = (0..n).map(|x| u.value(x, bits) * v.value(x, bits)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < 1e-9,
                    "<{u:?},{v:?}> = {dot}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn basis_range_sum_matches_pointwise() {
        let bits = 4;
        let n = 1u64 << bits;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let level = rng.gen_range(1..=bits);
            let k = rng.gen_range(0..(n >> level));
            let b = Basis1D::Wavelet { level, k };
            let a = rng.gen_range(0..n);
            let z = rng.gen_range(a..n);
            let direct: f64 = (a..=z).map(|x| b.value(x, bits)).sum();
            let closed = b.range_sum(a, z, bits);
            assert!((direct - closed).abs() < 1e-9, "{b:?} on [{a},{z}]");
        }
        // Scaling too.
        let s = Basis1D::Scaling;
        let direct: f64 = (2..=13).map(|x| s.value(x, bits)).sum();
        assert!((direct - s.range_sum(2, 13, bits)).abs() < 1e-9);
    }

    #[test]
    fn full_transform_is_exact() {
        // Keeping all coefficients reconstructs every range sum exactly.
        let data = random_data(40, 4, 2);
        let all = 40 * 5 * 5; // generous upper bound on distinct coeffs
        let w = WaveletSummary::build(&data, 4, 4, all);
        let exact = crate::exact::ExactEngine::new(&data);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let x0 = rng.gen_range(0..16);
            let x1 = rng.gen_range(x0..16);
            let y0 = rng.gen_range(0..16);
            let y1 = rng.gen_range(y0..16);
            let q = BoxRange::xy(x0, x1, y0, y1);
            let est = w.estimate_box(&q);
            let truth = exact.box_sum(&q);
            assert!(
                (est - truth).abs() < 1e-6 * (1.0 + truth),
                "{q:?}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn odd_bit_domain_is_exact_too() {
        let data = random_data(30, 3, 7);
        let w = WaveletSummary::build(&data, 3, 3, 10_000);
        let exact = crate::exact::ExactEngine::new(&data);
        let q = BoxRange::xy(1, 6, 2, 7);
        assert!((w.estimate_box(&q) - exact.box_sum(&q)).abs() < 1e-6);
    }

    #[test]
    fn thresholding_keeps_s_and_degrades_gracefully() {
        let data = random_data(200, 5, 4);
        let w_full = WaveletSummary::build(&data, 5, 5, usize::MAX);
        let w_half = WaveletSummary::build(&data, 5, 5, w_full.size_elements() / 2);
        assert!(w_half.size_elements() <= w_full.size_elements() / 2 + 1);
        let exact = crate::exact::ExactEngine::new(&data);
        let q = BoxRange::xy(0, 31, 0, 15);
        let e_full = (w_full.estimate_box(&q) - exact.box_sum(&q)).abs();
        let e_half = (w_half.estimate_box(&q) - exact.box_sum(&q)).abs();
        assert!(e_full < 1e-6);
        // Half-size estimate is approximate but bounded.
        assert!(e_half < exact.total());
    }

    #[test]
    fn empty_query_is_zero() {
        let data = random_data(10, 3, 5);
        let w = WaveletSummary::build(&data, 3, 3, 100);
        assert_eq!(w.estimate_box(&BoxRange::xy(5, 2, 0, 7)), 0.0);
    }

    #[test]
    fn dense_bound_matches_paper_formula() {
        let data = random_data(100, 8, 6);
        assert_eq!(
            WaveletSummary::dense_coefficient_bound(&data, 8, 8),
            100 * 81
        );
    }
}
