//! Two-dimensional standard (tensor-product) Haar wavelet summary with
//! coefficient thresholding — the "Wavelet" baseline of Section 6.
//!
//! For a domain `2^bx × 2^by`, the orthonormal basis is the tensor product
//! of the 1-D Haar bases. Each input point contributes to
//! `(bx + 1)(by + 1)` coefficients (the scaling function plus one wavelet
//! per level on each axis) — exactly the `log X · log Y` per-point cost the
//! paper measures. After the transform, the `s` largest (normalized)
//! coefficients are retained.
//!
//! A box query is answered in `O(s)` time: for each retained coefficient
//! `c_{u,v}` the contribution is `c · U([a,b]) · V([c,d])`, where `U`/`V`
//! are the closed-form sums of the 1-D basis functions over the query's
//! side intervals.

use std::collections::HashMap;

use sas_sampling::product::SpatialData;
use sas_structures::product::BoxRange;

use crate::RangeSumSummary;

/// A 1-D Haar basis function over a `2^bits` domain: either the scaling
/// (constant) function or the wavelet at `level ∈ [1, bits]`, block `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Basis1D {
    Scaling,
    /// `level` ≥ 1: support is `[k·2^level, (k+1)·2^level)`, positive on the
    /// first half, negative on the second, magnitude `2^(−level/2)`.
    Wavelet {
        level: u32,
        k: u64,
    },
}

impl Basis1D {
    /// Value of the basis function at `x` (0 outside support).
    fn value(self, x: u64, bits: u32) -> f64 {
        match self {
            Basis1D::Scaling => 2.0_f64.powi(-(bits as i32) / 2) * scale_adjust(bits),
            Basis1D::Wavelet { level, k } => {
                if (x >> level) != k {
                    return 0.0;
                }
                let sign = if ((x >> (level - 1)) & 1) == 0 {
                    1.0
                } else {
                    -1.0
                };
                sign * 2.0_f64.powf(-(level as f64) / 2.0)
            }
        }
    }

    /// Sum of the basis function over the interval `[a, b]` (closed form).
    fn range_sum(self, a: u64, b: u64, bits: u32) -> f64 {
        if a > b {
            return 0.0;
        }
        match self {
            Basis1D::Scaling => {
                (b - a + 1) as f64 * 2.0_f64.powi(-(bits as i32) / 2) * scale_adjust(bits)
            }
            Basis1D::Wavelet { level, k } => {
                let lo = k << level;
                let half = 1u64 << (level - 1);
                let mid = lo + half; // first negative position
                let hi = lo + (1u64 << level) - 1;
                let pos = overlap(a, b, lo, mid - 1);
                let neg = overlap(a, b, mid, hi);
                (pos as f64 - neg as f64) * 2.0_f64.powf(-(level as f64) / 2.0)
            }
        }
    }
}

/// `2^(−bits/2)` is computed with integer `powi` for even bits; this factor
/// corrects odd bit counts (√2 adjustment).
fn scale_adjust(bits: u32) -> f64 {
    if bits % 2 == 1 {
        std::f64::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

/// Maximum range inner product of a 1-D basis function: `2^(level/2)` for a
/// wavelet at `level` (half its support, signed), `2^(bits/2)` for scaling.
fn level_scale(b: Basis1D, bits: u32) -> f64 {
    match b {
        Basis1D::Scaling => 2.0_f64.powf(bits as f64 / 2.0),
        Basis1D::Wavelet { level, .. } => 2.0_f64.powf(level as f64 / 2.0),
    }
}

/// Canonical tie-break key: coefficients of equal importance come out of a
/// hash map in arbitrary order, and summation order must be deterministic
/// for byte-stable encodings and bit-identical merged estimates.
fn basis_key(b: Basis1D) -> (u8, u32, u64) {
    match b {
        Basis1D::Scaling => (0, 0, 0),
        Basis1D::Wavelet { level, k } => (1, level, k),
    }
}

/// Range-sum importance of a coefficient: an upper bound on its
/// contribution to any box query (`|c| ×` the two axes' maximum range
/// inner products).
fn importance(c: &Coefficient, bits_x: u32, bits_y: u32) -> f64 {
    c.value.abs() * level_scale(c.bx, bits_x) * level_scale(c.by, bits_y)
}

/// Sorts coefficients by descending range-sum impact with a canonical
/// tie-break (see [`basis_key`]).
fn sort_by_importance(coeffs: &mut [Coefficient], bits_x: u32, bits_y: u32) {
    coeffs.sort_by(|a, b| {
        importance(b, bits_x, bits_y)
            .total_cmp(&importance(a, bits_x, bits_y))
            .then_with(|| {
                (basis_key(a.bx), basis_key(a.by)).cmp(&(basis_key(b.bx), basis_key(b.by)))
            })
    });
}

/// Size of `[a,b] ∩ [lo,hi]` over integers.
fn overlap(a: u64, b: u64, lo: u64, hi: u64) -> u64 {
    let l = a.max(lo);
    let h = b.min(hi);
    if l > h {
        0
    } else {
        h - l + 1
    }
}

/// A retained 2-D wavelet coefficient.
#[derive(Debug, Clone, Copy)]
struct Coefficient {
    bx: Basis1D,
    by: Basis1D,
    value: f64,
}

/// The thresholded 2-D Haar wavelet summary.
#[derive(Debug, Clone)]
pub struct WaveletSummary {
    coeffs: Vec<Coefficient>,
    bits_x: u32,
    bits_y: u32,
    /// Upper bound on the importance of any coefficient this summary ever
    /// dropped (0 when the budget kept everything). Tracked through
    /// truncation and merges so [`bound_box`](WaveletSummary::bound_box)
    /// stays sound; not persisted (the wire format predates it), so
    /// decoding falls back to the smallest retained importance.
    dropped_ceiling: f64,
    /// Upper bound on the error of any *retained* coefficient: 0 for
    /// direct builds (retained coefficients are exact), positive after a
    /// merge (a coefficient retained by one input but dropped by the other
    /// is missing the dropped input's share).
    retained_slack: f64,
}

impl WaveletSummary {
    /// Builds the full transform of `data` over a `2^bits_x × 2^bits_y`
    /// domain and keeps the `s` largest coefficients by magnitude.
    ///
    /// # Panics
    /// Panics if any point lies outside the domain.
    pub fn build(data: &SpatialData, bits_x: u32, bits_y: u32, s: usize) -> Self {
        let mut acc: HashMap<(Basis1D, Basis1D), f64> = HashMap::new();
        for (wk, p) in data.keys.iter().zip(&data.points) {
            if wk.weight == 0.0 {
                continue;
            }
            let (x, y) = (p.coord(0), p.coord(1));
            if bits_x < 64 {
                assert!(x < (1u64 << bits_x), "x={x} outside 2^{bits_x} domain");
            }
            if bits_y < 64 {
                assert!(y < (1u64 << bits_y), "y={y} outside 2^{bits_y} domain");
            }
            let xs = basis_functions_at(x, bits_x);
            let ys = basis_functions_at(y, bits_y);
            for &(ub, uv) in &xs {
                if uv == 0.0 {
                    continue;
                }
                for &(vb, vv) in &ys {
                    if vv == 0.0 {
                        continue;
                    }
                    *acc.entry((ub, vb)).or_insert(0.0) += wk.weight * uv * vv;
                }
            }
        }
        let mut all: Vec<Coefficient> = acc
            .into_iter()
            .map(|((bx, by), value)| Coefficient { bx, by, value })
            .collect();
        // Threshold by *range-sum impact*, not raw L2 magnitude: a level-ℓ
        // coefficient contributes up to |c|·2^(ℓ/2)/2 to a range query (its
        // range inner product), so coarse coefficients matter far more for
        // range sums than pointwise L2 thresholding would suggest. This is
        // the standard normalization for selectivity-estimation wavelets
        // [Matias–Vitter–Wang].
        sort_by_importance(&mut all, bits_x, bits_y);
        // The largest coefficient the truncation is about to drop caps the
        // contribution of *every* dropped coefficient to any box query —
        // the truncation ceiling `bound_box` is built on. A budget that
        // keeps everything drops nothing: the summary is exact.
        let dropped_ceiling = all
            .get(s)
            .map(|c| importance(c, bits_x, bits_y))
            .unwrap_or(0.0);
        all.truncate(s);
        Self {
            coeffs: all,
            bits_x,
            bits_y,
            dropped_ceiling,
            retained_slack: 0.0,
        }
    }

    /// Total number of coefficients that would exist without thresholding
    /// (diagnostic; the paper notes this reaches tens of millions).
    pub fn dense_coefficient_bound(data: &SpatialData, bits_x: u32, bits_y: u32) -> usize {
        data.len() * ((bits_x + 1) as usize) * ((bits_y + 1) as usize)
    }

    /// A copy keeping only the `s` largest coefficients. Cheap (coefficients
    /// are stored sorted by magnitude), so a single full transform can serve
    /// a whole summary-size sweep.
    pub fn truncated(&self, s: usize) -> Self {
        let dropped_ceiling = self
            .coeffs
            .get(s)
            .map(|c| importance(c, self.bits_x, self.bits_y))
            .map_or(self.dropped_ceiling, |i| self.dropped_ceiling.max(i));
        Self {
            coeffs: self.coeffs.iter().take(s).copied().collect(),
            bits_x: self.bits_x,
            bits_y: self.bits_y,
            dropped_ceiling,
            retained_slack: self.retained_slack,
        }
    }

    /// Merges a summary of disjoint data by coefficient-wise addition — the
    /// Haar transform is linear, so the merged coefficients equal those of a
    /// transform over the union (restricted to the retained basis
    /// functions). The union of the two coefficient sets is kept, re-sorted
    /// by range-sum impact; truncate with [`WaveletSummary::truncated`] to
    /// restore a size budget.
    ///
    /// Fails (no mutation) if the domain geometries differ.
    pub fn try_merge(&mut self, other: Self) -> Result<(), String> {
        if (self.bits_x, self.bits_y) != (other.bits_x, other.bits_y) {
            return Err(format!(
                "wavelet domain mismatch: 2^{}×2^{} vs 2^{}×2^{}",
                self.bits_x, self.bits_y, other.bits_x, other.bits_y
            ));
        }
        let mut acc: HashMap<(Basis1D, Basis1D), f64> = self
            .coeffs
            .drain(..)
            .map(|c| ((c.bx, c.by), c.value))
            .collect();
        for c in other.coeffs {
            *acc.entry((c.bx, c.by)).or_insert(0.0) += c.value;
        }
        let mut all: Vec<Coefficient> = acc
            .into_iter()
            .map(|((bx, by), value)| Coefficient { bx, by, value })
            .collect();
        sort_by_importance(&mut all, self.bits_x, self.bits_y);
        self.coeffs = all;
        // Error bookkeeping for `bound_box`: a coefficient missing from
        // the union was dropped by *both* inputs (errors add); one kept by
        // a single input is missing the other input's dropped share, so
        // every retained coefficient now carries up to one input-ceiling
        // of error each.
        let self_worst = self.retained_slack.max(self.dropped_ceiling);
        let other_worst = other.retained_slack.max(other.dropped_ceiling);
        self.retained_slack = self_worst + other_worst;
        self.dropped_ceiling += other.dropped_ceiling;
        Ok(())
    }

    /// Writes the wire representation (see `sas-codec` for the framing).
    pub(crate) fn write_wire(&self, w: &mut sas_codec::Writer) {
        fn put_basis(w: &mut sas_codec::Writer, b: Basis1D) {
            match b {
                Basis1D::Scaling => {
                    w.put_u8(0);
                    w.put_u32(0);
                    w.put_u64(0);
                }
                Basis1D::Wavelet { level, k } => {
                    w.put_u8(1);
                    w.put_u32(level);
                    w.put_u64(k);
                }
            }
        }
        w.section(1, |w| {
            w.put_u32(self.bits_x);
            w.put_u32(self.bits_y);
        });
        w.section(2, |w| {
            w.put_u64(self.coeffs.len() as u64);
            for c in &self.coeffs {
                put_basis(w, c.bx);
                put_basis(w, c.by);
                w.put_f64(c.value);
            }
        });
    }

    /// Reads the wire representation, validating basis indices against the
    /// domain geometry (never panics).
    pub(crate) fn read_wire(r: &mut sas_codec::Reader<'_>) -> Result<Self, sas_codec::CodecError> {
        use sas_codec::CodecError;
        fn get_basis(r: &mut sas_codec::Reader<'_>, bits: u32) -> Result<Basis1D, CodecError> {
            let tag = r.get_u8()?;
            let level = r.get_u32()?;
            let k = r.get_u64()?;
            match tag {
                0 => Ok(Basis1D::Scaling),
                1 => {
                    if level == 0 || level > bits {
                        return Err(CodecError::Invalid(format!(
                            "wavelet level {level} outside [1, {bits}]"
                        )));
                    }
                    if bits < 64 && k >= 1u64 << (bits - level) {
                        return Err(CodecError::Invalid(format!(
                            "wavelet block {k} outside level-{level} domain"
                        )));
                    }
                    Ok(Basis1D::Wavelet { level, k })
                }
                t => Err(CodecError::Invalid(format!("unknown basis tag {t}"))),
            }
        }
        let mut meta = r.expect_section(1)?;
        let bits_x = meta.get_u32()?;
        let bits_y = meta.get_u32()?;
        meta.finish()?;
        if bits_x >= 64 || bits_y >= 64 {
            return Err(CodecError::Invalid(format!(
                "domain bits ({bits_x}, {bits_y}) too large"
            )));
        }
        let mut body = r.expect_section(2)?;
        let n = body.get_len(34)?; // 2 × (u8 + u32 + u64) + f64 per coefficient
        let mut coeffs = Vec::with_capacity(n);
        for _ in 0..n {
            let bx = get_basis(&mut body, bits_x)?;
            let by = get_basis(&mut body, bits_y)?;
            let value = body.get_finite_f64()?;
            coeffs.push(Coefficient { bx, by, value });
        }
        body.finish()?;
        // The frame format predates the error bookkeeping, so decoding
        // reconstructs the ceiling conservatively from the smallest
        // retained importance (sound for persisted direct builds — the
        // largest dropped coefficient cannot outrank the smallest kept
        // one). A persisted *merged* summary loses its merge slack; see
        // `bound_box` for the caveat.
        let dropped_ceiling = coeffs
            .last()
            .map(|c| importance(c, bits_x, bits_y))
            .unwrap_or(0.0);
        Ok(Self {
            coeffs,
            bits_x,
            bits_y,
            dropped_ceiling,
            retained_slack: 0.0,
        })
    }
}

impl WaveletSummary {
    /// Deterministic bound on the truncation error of
    /// [`estimate_box`](RangeSumSummary::estimate_box): the exact answer
    /// lies within `estimate ± bound_box(query)`.
    ///
    /// Derivation: the exact answer is the inner product over *all*
    /// coefficients, and a coefficient's contribution to any box query is
    /// at most its range-sum importance `|c|·2^(ℓx/2)·2^(ℓy/2)`. Only
    /// O(log²) basis pairs have a nonzero inner product with a given box
    /// (a wavelet fully inside or outside the query sums to zero; only the
    /// ≤ 2 blocks per level straddling a query edge survive), so the error
    /// is at most the dropped-coefficient ceiling times the number of
    /// those *relevant* pairs not retained (plus the per-retained-pair
    /// merge slack, below).
    ///
    /// The ceiling on dropped coefficients is tracked explicitly
    /// (`dropped_ceiling`): the importance of the largest coefficient the
    /// build's truncation discarded — 0 when the budget kept everything,
    /// so an untruncated summary answers with a zero-width bound. Merges
    /// keep the bound sound by adding the inputs' ceilings and charging
    /// every *retained* coefficient the possible missing share of the
    /// input that dropped it (`retained_slack`). The one residual caveat:
    /// the wire format predates this bookkeeping, so a *merged* summary
    /// that is persisted and decoded falls back to the smallest retained
    /// importance — sound for direct builds, approximate for re-loaded
    /// merges (carrying the two floats needs a format-version bump).
    pub fn bound_box(&self, query: &BoxRange) -> f64 {
        if query.is_empty() || self.coeffs.is_empty() {
            return 0.0;
        }
        if self.dropped_ceiling == 0.0 && self.retained_slack == 0.0 {
            return 0.0; // nothing was ever dropped: the transform is exact
        }
        let max_x = if self.bits_x < 64 {
            (1u64 << self.bits_x) - 1
        } else {
            u64::MAX
        };
        let max_y = if self.bits_y < 64 {
            (1u64 << self.bits_y) - 1
        } else {
            u64::MAX
        };
        let (ax, bx) = (query.sides[0].lo.min(max_x), query.sides[0].hi.min(max_x));
        let (ay, by) = (query.sides[1].lo.min(max_y), query.sides[1].hi.min(max_y));
        let rel_x = relevant_bases(ax, bx, self.bits_x);
        let rel_y = relevant_bases(ay, by, self.bits_y);
        let retained_relevant = self
            .coeffs
            .iter()
            .filter(|c| rel_x.contains(&c.bx) && rel_y.contains(&c.by))
            .count();
        let missing = (rel_x.len() * rel_y.len()).saturating_sub(retained_relevant);
        self.dropped_ceiling * missing as f64 + self.retained_slack * retained_relevant as f64
    }
}

/// The basis functions with a nonzero range inner product over `[a, b]`:
/// the scaling function plus, per level, the at-most-two wavelets whose
/// support straddles `a` or `b` (fully covered or disjoint supports sum to
/// zero).
fn relevant_bases(a: u64, b: u64, bits: u32) -> Vec<Basis1D> {
    let mut out = vec![Basis1D::Scaling];
    for level in 1..=bits {
        for k in [a >> level, b >> level] {
            let basis = Basis1D::Wavelet { level, k };
            if basis.range_sum(a, b, bits) != 0.0 && !out.contains(&basis) {
                out.push(basis);
            }
        }
    }
    out
}

/// The `(bits+1)` basis functions with `x` in their support, with values.
fn basis_functions_at(x: u64, bits: u32) -> Vec<(Basis1D, f64)> {
    let mut out = Vec::with_capacity(bits as usize + 1);
    let scaling = Basis1D::Scaling;
    out.push((scaling, scaling.value(x, bits)));
    for level in 1..=bits {
        let b = Basis1D::Wavelet {
            level,
            k: x >> level,
        };
        out.push((b, b.value(x, bits)));
    }
    out
}

impl RangeSumSummary for WaveletSummary {
    fn estimate_box(&self, query: &BoxRange) -> f64 {
        if query.is_empty() {
            return 0.0;
        }
        // Clamp to the domain: queries may legitimately extend past it
        // (e.g. kd-tree cells tile the whole u64 space).
        let max_x = if self.bits_x < 64 {
            (1u64 << self.bits_x) - 1
        } else {
            u64::MAX
        };
        let max_y = if self.bits_y < 64 {
            (1u64 << self.bits_y) - 1
        } else {
            u64::MAX
        };
        let (ax, bx) = (query.sides[0].lo.min(max_x), query.sides[0].hi.min(max_x));
        let (ay, by) = (query.sides[1].lo.min(max_y), query.sides[1].hi.min(max_y));
        self.coeffs
            .iter()
            .map(|c| {
                c.value * c.bx.range_sum(ax, bx, self.bits_x) * c.by.range_sum(ay, by, self.bits_y)
            })
            .sum()
    }

    fn size_elements(&self) -> usize {
        self.coeffs.len()
    }

    fn name(&self) -> &'static str {
        "wavelet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, bits: u32, seed: u64) -> SpatialData {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 1u64 << bits;
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..side),
                    rng.gen_range(0..side),
                    rng.gen_range(0.5..5.0),
                )
            })
            .collect();
        SpatialData::from_xyw(&rows)
    }

    #[test]
    fn basis_orthonormal_1d() {
        let bits = 3;
        let n = 1u64 << bits;
        let mut fns = vec![Basis1D::Scaling];
        for level in 1..=bits {
            for k in 0..(n >> level) {
                fns.push(Basis1D::Wavelet { level, k });
            }
        }
        assert_eq!(fns.len() as u64, n);
        for (i, &u) in fns.iter().enumerate() {
            for (j, &v) in fns.iter().enumerate() {
                let dot: f64 = (0..n).map(|x| u.value(x, bits) * v.value(x, bits)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < 1e-9,
                    "<{u:?},{v:?}> = {dot}, expected {expect}"
                );
            }
        }
    }

    #[test]
    fn basis_range_sum_matches_pointwise() {
        let bits = 4;
        let n = 1u64 << bits;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let level = rng.gen_range(1..=bits);
            let k = rng.gen_range(0..(n >> level));
            let b = Basis1D::Wavelet { level, k };
            let a = rng.gen_range(0..n);
            let z = rng.gen_range(a..n);
            let direct: f64 = (a..=z).map(|x| b.value(x, bits)).sum();
            let closed = b.range_sum(a, z, bits);
            assert!((direct - closed).abs() < 1e-9, "{b:?} on [{a},{z}]");
        }
        // Scaling too.
        let s = Basis1D::Scaling;
        let direct: f64 = (2..=13).map(|x| s.value(x, bits)).sum();
        assert!((direct - s.range_sum(2, 13, bits)).abs() < 1e-9);
    }

    #[test]
    fn full_transform_is_exact() {
        // Keeping all coefficients reconstructs every range sum exactly.
        let data = random_data(40, 4, 2);
        let all = 40 * 5 * 5; // generous upper bound on distinct coeffs
        let w = WaveletSummary::build(&data, 4, 4, all);
        let exact = crate::exact::ExactEngine::new(&data);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let x0 = rng.gen_range(0..16);
            let x1 = rng.gen_range(x0..16);
            let y0 = rng.gen_range(0..16);
            let y1 = rng.gen_range(y0..16);
            let q = BoxRange::xy(x0, x1, y0, y1);
            let est = w.estimate_box(&q);
            let truth = exact.box_sum(&q);
            assert!(
                (est - truth).abs() < 1e-6 * (1.0 + truth),
                "{q:?}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn odd_bit_domain_is_exact_too() {
        let data = random_data(30, 3, 7);
        let w = WaveletSummary::build(&data, 3, 3, 10_000);
        let exact = crate::exact::ExactEngine::new(&data);
        let q = BoxRange::xy(1, 6, 2, 7);
        assert!((w.estimate_box(&q) - exact.box_sum(&q)).abs() < 1e-6);
    }

    #[test]
    fn thresholding_keeps_s_and_degrades_gracefully() {
        let data = random_data(200, 5, 4);
        let w_full = WaveletSummary::build(&data, 5, 5, usize::MAX);
        let w_half = WaveletSummary::build(&data, 5, 5, w_full.size_elements() / 2);
        assert!(w_half.size_elements() <= w_full.size_elements() / 2 + 1);
        let exact = crate::exact::ExactEngine::new(&data);
        let q = BoxRange::xy(0, 31, 0, 15);
        let e_full = (w_full.estimate_box(&q) - exact.box_sum(&q)).abs();
        let e_half = (w_half.estimate_box(&q) - exact.box_sum(&q)).abs();
        assert!(e_full < 1e-6);
        // Half-size estimate is approximate but bounded.
        assert!(e_half < exact.total());
    }

    #[test]
    fn empty_query_is_zero() {
        let data = random_data(10, 3, 5);
        let w = WaveletSummary::build(&data, 3, 3, 100);
        assert_eq!(w.estimate_box(&BoxRange::xy(5, 2, 0, 7)), 0.0);
    }

    #[test]
    fn dense_bound_matches_paper_formula() {
        let data = random_data(100, 8, 6);
        assert_eq!(
            WaveletSummary::dense_coefficient_bound(&data, 8, 8),
            100 * 81
        );
    }

    #[test]
    fn relevant_bases_are_the_only_nonzero_ones() {
        // The O(log) set `relevant_bases` returns must contain every basis
        // function with a nonzero inner product over the interval.
        let bits = 5;
        let n = 1u64 << bits;
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(a..n);
            let rel = relevant_bases(a, b, bits);
            assert!(rel.len() <= 2 * bits as usize + 1);
            for level in 1..=bits {
                for k in 0..(n >> level) {
                    let basis = Basis1D::Wavelet { level, k };
                    if basis.range_sum(a, b, bits) != 0.0 {
                        assert!(rel.contains(&basis), "[{a},{b}]: missing {basis:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn truncation_bound_contains_exact_answer() {
        let data = random_data(250, 5, 12);
        let exact = crate::exact::ExactEngine::new(&data);
        for budget in [15, 60, 200] {
            let w = WaveletSummary::build(&data, 5, 5, budget);
            let mut rng = StdRng::seed_from_u64(13);
            for _ in 0..50 {
                let x0 = rng.gen_range(0..32);
                let x1 = rng.gen_range(x0..32);
                let y0 = rng.gen_range(0..32);
                let y1 = rng.gen_range(y0..32);
                let q = BoxRange::xy(x0, x1, y0, y1);
                let est = w.estimate_box(&q);
                let err = w.bound_box(&q);
                let truth = exact.box_sum(&q);
                assert!(err >= 0.0);
                assert!(
                    (est - truth).abs() <= err + 1e-6,
                    "budget {budget} {q:?}: |{est} - {truth}| > {err}"
                );
            }
        }
        // Empty query: zero bound.
        let w = WaveletSummary::build(&data, 5, 5, 30);
        assert_eq!(w.bound_box(&BoxRange::xy(9, 3, 0, 31)), 0.0);
        // A budget that kept every coefficient dropped nothing: the bound
        // collapses to zero everywhere.
        let exact_build = WaveletSummary::build(&data, 5, 5, 250 * 36);
        assert_eq!(exact_build.bound_box(&BoxRange::xy(3, 17, 5, 29)), 0.0);
    }

    #[test]
    fn truncation_bound_survives_merges() {
        // The store's compaction path: two independently truncated halves
        // merged via try_merge. The merged bound must still contain the
        // exact answer over the union — the merge bookkeeping (ceiling
        // addition + retained slack) is what makes this sound.
        let all = random_data(400, 5, 41);
        let rows: Vec<(u64, u64, f64)> = all
            .keys
            .iter()
            .zip(&all.points)
            .map(|(wk, p)| (p.coord(0), p.coord(1), wk.weight))
            .collect();
        let (first, second) = rows.split_at(200);
        let exact = crate::exact::ExactEngine::new(&all);
        for budget in [20, 80] {
            let mut merged = WaveletSummary::build(&SpatialData::from_xyw(first), 5, 5, budget);
            merged
                .try_merge(WaveletSummary::build(
                    &SpatialData::from_xyw(second),
                    5,
                    5,
                    budget,
                ))
                .unwrap();
            let mut rng = StdRng::seed_from_u64(42);
            for _ in 0..50 {
                let x0 = rng.gen_range(0..32);
                let x1 = rng.gen_range(x0..32);
                let y0 = rng.gen_range(0..32);
                let y1 = rng.gen_range(y0..32);
                let q = BoxRange::xy(x0, x1, y0, y1);
                let est = merged.estimate_box(&q);
                let err = merged.bound_box(&q);
                let truth = exact.box_sum(&q);
                assert!(
                    (est - truth).abs() <= err + 1e-6,
                    "budget {budget} {q:?}: |{est} - {truth}| > {err}"
                );
            }
        }
    }
}
