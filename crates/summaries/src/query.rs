//! The unified query/estimation API: every question asked of a summary —
//! offline `sas query`, the store daemon, the facade — is a [`Query`], and
//! every answer is an [`Estimate`]: a value *with an error bar*.
//!
//! The paper's central claim is not point estimates but accuracy: VarOpt
//! samples answer subset-sum queries with Chernoff-bounded deviation
//! (Eqns. 2–4), q-digests and wavelets carry deterministic truncation
//! error, sketches report the spread of their row medians. This module is
//! where those per-kind bound derivations meet one answer type.
//!
//! ## Query kinds
//!
//! * [`Query::BoxRange`] — weight inside one axis-aligned box.
//! * [`Query::MultiRange`] — weight of a disjoint union of boxes.
//! * [`Query::Point`] — weight at a single key / location.
//! * [`Query::HierarchyNode`] — weight under a dyadic hierarchy node
//!   (level, index) on axis 0 — the paper's hierarchy-range primitive.
//! * [`Query::Total`] — total data weight.
//!
//! [`Query::canonical`] folds equivalent spellings onto one form (a point
//! is a degenerate box, a full-domain box is `Total`, multi-range boxes
//! sort canonically) so the store's query cache and the wire encoding are
//! stable under re-phrasing.
//!
//! ## Wire form
//!
//! Queries and estimates travel as `sas-codec` frames
//! ([`sas_codec::proto::TAG_QUERY`] / [`TAG_ESTIMATE`](sas_codec::proto::TAG_ESTIMATE)):
//! the store protocol embeds the same body layout in its
//! `REQ_ESTIMATE` messages, and `tests/golden/` pins both encodings.

use std::fmt;

use sas_codec::{encode_frame, open_frame, proto, CodecError, Reader, Writer};

/// Hard cap on boxes in one multi-range query (protocol sanity bound).
pub const MAX_QUERY_BOXES: usize = 4096;

/// Hard cap on query axes (the summaries in this workspace are 1-D/2-D;
/// the format leaves room).
pub const MAX_QUERY_AXES: usize = 8;

/// One question asked of a summary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// Weight inside an axis-aligned box: `axes[i]` is the closed interval
    /// on axis `i`; missing axes span the full domain.
    BoxRange(Vec<(u64, u64)>),
    /// Weight of a *disjoint* union of boxes (validated on
    /// [`Query::canonical`]).
    MultiRange(Vec<Vec<(u64, u64)>>),
    /// Weight at a single key (1-D) or location (2-D): one coordinate per
    /// axis.
    Point(Vec<u64>),
    /// Weight under the dyadic hierarchy node `(level, index)` on axis 0:
    /// keys in `[index·2^level, (index+1)·2^level − 1]`, full domain on
    /// any remaining axes.
    HierarchyNode {
        /// Node level (side `2^level`).
        level: u32,
        /// Node index at that level.
        index: u64,
    },
    /// Total data weight.
    Total,
}

/// An answer with an error bar.
///
/// `value` is the summary's estimate; `[lower, upper]` contains the exact
/// answer with probability at least `confidence` (exactly, for the
/// deterministic kinds, which report `confidence = 1`); `variance` is the
/// kind's variance estimate (0 for deterministic kinds, an HT-style
/// estimate of `Σ Var[a(i)]` for sample kinds, the row-spread proxy for
/// sketches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// Variance estimate of the point estimate (0 when deterministic).
    pub variance: f64,
    /// Lower end of the confidence interval.
    pub lower: f64,
    /// Upper end of the confidence interval.
    pub upper: f64,
    /// Probability that `[lower, upper]` contains the exact answer.
    pub confidence: f64,
}

impl Estimate {
    /// An exact answer: zero variance, degenerate interval, certainty.
    pub fn exact(value: f64) -> Self {
        Estimate {
            value,
            variance: 0.0,
            lower: value,
            upper: value,
            confidence: 1.0,
        }
    }

    /// Half-width of the confidence interval (the `±` the CLI prints).
    pub fn half_width(&self) -> f64 {
        ((self.upper - self.lower) / 2.0).max(0.0)
    }

    /// Adds another estimate of *disjoint* data: values, variances, and
    /// interval ends add (interval sums are valid per-window; the caller
    /// is responsible for splitting the failure probability across
    /// summands — see the store's union-bound query path).
    pub fn merge_disjoint(&mut self, other: &Estimate) {
        self.value += other.value;
        self.variance += other.variance;
        self.lower += other.lower;
        self.upper += other.upper;
        self.confidence = self.confidence.min(other.confidence);
    }
}

/// Everything that can go wrong answering a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query itself is malformed (reversed bounds, overlapping
    /// multi-range boxes, axis count beyond the summary's dimensionality…).
    BadQuery(String),
    /// The requested confidence is outside what the kind can certify.
    BadConfidence(f64),
    /// Wire decoding failed.
    Codec(CodecError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            QueryError::BadConfidence(c) => {
                write!(f, "confidence {c} outside (0, 1)")
            }
            QueryError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CodecError> for QueryError {
    fn from(e: CodecError) -> Self {
        QueryError::Codec(e)
    }
}

fn bad<T>(msg: impl Into<String>) -> Result<T, QueryError> {
    Err(QueryError::BadQuery(msg.into()))
}

/// The full-domain interval.
const FULL: (u64, u64) = (0, u64::MAX);

fn axes_valid(axes: &[(u64, u64)]) -> Result<(), QueryError> {
    if axes.len() > MAX_QUERY_AXES {
        return bad(format!(
            "{} axes exceed the cap {MAX_QUERY_AXES}",
            axes.len()
        ));
    }
    for &(lo, hi) in axes {
        if lo > hi {
            return bad(format!("reversed range {lo}..{hi} (lo > hi)"));
        }
    }
    Ok(())
}

/// Closed intervals `[a_lo, a_hi]` and `[b_lo, b_hi]` overlap on every axis
/// (missing axes are full-domain and always overlap).
fn boxes_overlap(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    let axes = a.len().max(b.len());
    (0..axes).all(|i| {
        let (alo, ahi) = a.get(i).copied().unwrap_or(FULL);
        let (blo, bhi) = b.get(i).copied().unwrap_or(FULL);
        alo.max(blo) <= ahi.min(bhi)
    })
}

impl Query {
    /// A box query over one 1-D interval.
    pub fn interval(lo: u64, hi: u64) -> Self {
        Query::BoxRange(vec![(lo, hi)])
    }

    /// Validates the query and folds it onto its canonical form:
    ///
    /// * a full-domain (or empty-axes) box, and a level-`64` spelling of
    ///   the whole hierarchy, become [`Query::Total`];
    /// * a point becomes the degenerate box;
    /// * a hierarchy node becomes the box over its span;
    /// * a single-box multi-range becomes that box; remaining boxes sort
    ///   lexicographically.
    ///
    /// The canonical form is what the store's query cache keys on, so
    /// `0..u64::MAX`, `Total`, and `node 64/0` all share one cache line.
    pub fn canonical(&self) -> Result<Query, QueryError> {
        match self {
            Query::Total => Ok(Query::Total),
            Query::BoxRange(axes) => {
                axes_valid(axes)?;
                if axes.iter().all(|&a| a == FULL) {
                    return Ok(Query::Total);
                }
                Ok(Query::BoxRange(axes.clone()))
            }
            Query::Point(coords) => {
                if coords.is_empty() {
                    return bad("point query needs at least one coordinate");
                }
                if coords.len() > MAX_QUERY_AXES {
                    return bad(format!(
                        "{} coordinates exceed the cap {MAX_QUERY_AXES}",
                        coords.len()
                    ));
                }
                Ok(Query::BoxRange(coords.iter().map(|&c| (c, c)).collect()))
            }
            Query::HierarchyNode { level, index } => {
                let (level, index) = (*level, *index);
                if level > 64 {
                    return bad(format!("hierarchy level {level} exceeds 64"));
                }
                if level == 64 {
                    return if index == 0 {
                        Ok(Query::Total)
                    } else {
                        bad(format!("level-64 node index {index} out of range"))
                    };
                }
                // Level 0 nodes are single keys: every u64 index is valid
                // (and 64 − 0 would overflow the shift).
                if level > 0 && index >= (1u64 << (64 - level)) {
                    return bad(format!("node index {index} out of range at level {level}"));
                }
                let lo = index << level;
                let hi = lo + ((1u64 << level) - 1);
                if (lo, hi) == FULL {
                    return Ok(Query::Total);
                }
                Ok(Query::BoxRange(vec![(lo, hi)]))
            }
            Query::MultiRange(boxes) => {
                if boxes.is_empty() {
                    return bad("multi-range query needs at least one box");
                }
                if boxes.len() > MAX_QUERY_BOXES {
                    return bad(format!(
                        "{} boxes exceed the cap {MAX_QUERY_BOXES}",
                        boxes.len()
                    ));
                }
                for axes in boxes {
                    axes_valid(axes)?;
                }
                for (i, a) in boxes.iter().enumerate() {
                    for b in &boxes[i + 1..] {
                        if boxes_overlap(a, b) {
                            return bad(format!(
                                "multi-range boxes {a:?} and {b:?} overlap (the union must be disjoint)"
                            ));
                        }
                    }
                }
                if boxes.len() == 1 {
                    return Query::BoxRange(boxes[0].clone()).canonical();
                }
                let mut sorted = boxes.clone();
                sorted.sort();
                Ok(Query::MultiRange(sorted))
            }
        }
    }

    /// The disjoint boxes the (canonical) query evaluates over, each
    /// normalized to `dims` axes (missing axes full-domain). Errors if the
    /// query names more axes than the summary has.
    pub fn boxes(&self, dims: usize) -> Result<Vec<Vec<(u64, u64)>>, QueryError> {
        let norm = |axes: &[(u64, u64)]| -> Result<Vec<(u64, u64)>, QueryError> {
            if axes.len() > dims {
                return bad(format!(
                    "query names {} axes but the summary is {dims}-D",
                    axes.len()
                ));
            }
            Ok((0..dims)
                .map(|i| axes.get(i).copied().unwrap_or(FULL))
                .collect())
        };
        match self.canonical()? {
            Query::Total => Ok(vec![vec![FULL; dims]]),
            Query::BoxRange(axes) => Ok(vec![norm(&axes)?]),
            Query::MultiRange(boxes) => boxes.iter().map(|b| norm(b)).collect(),
            other => unreachable!("canonical() never returns {other:?}"),
        }
    }

    /// The canonical body bytes — what the store's query cache keys on.
    pub fn canonical_bytes(&self) -> Result<Vec<u8>, QueryError> {
        let canonical = self.canonical()?;
        let mut w = Writer::new();
        canonical.write_wire(&mut w);
        Ok(w.into_bytes())
    }

    /// Writes the wire representation (two sections: kind tag, payload).
    pub fn write_wire(&self, w: &mut Writer) {
        let put_axes = |w: &mut Writer, axes: &[(u64, u64)]| {
            w.put_u64(axes.len() as u64);
            for &(lo, hi) in axes {
                w.put_u64(lo);
                w.put_u64(hi);
            }
        };
        match self {
            Query::BoxRange(axes) => {
                w.section(1, |w| w.put_u8(1));
                w.section(2, |w| put_axes(w, axes));
            }
            Query::MultiRange(boxes) => {
                w.section(1, |w| w.put_u8(2));
                w.section(2, |w| {
                    w.put_u64(boxes.len() as u64);
                    for axes in boxes {
                        put_axes(w, axes);
                    }
                });
            }
            Query::Point(coords) => {
                w.section(1, |w| w.put_u8(3));
                w.section(2, |w| {
                    w.put_u64(coords.len() as u64);
                    for &c in coords {
                        w.put_u64(c);
                    }
                });
            }
            Query::HierarchyNode { level, index } => {
                w.section(1, |w| w.put_u8(4));
                w.section(2, |w| {
                    w.put_u32(*level);
                    w.put_u64(*index);
                });
            }
            Query::Total => {
                w.section(1, |w| w.put_u8(5));
                w.section(2, |_| {});
            }
        }
    }

    /// Reads the wire representation, validating shape invariants (never
    /// panics on hostile input).
    pub fn read_wire(r: &mut Reader<'_>) -> Result<Query, CodecError> {
        let invalid = |e: QueryError| CodecError::Invalid(e.to_string());
        let mut kind_sec = r.expect_section(1)?;
        let kind = kind_sec.get_u8()?;
        kind_sec.finish()?;
        let mut body = r.expect_section(2)?;
        let get_axes = |body: &mut Reader<'_>| -> Result<Vec<(u64, u64)>, CodecError> {
            let n = body.get_len(16)?;
            if n > MAX_QUERY_AXES {
                return Err(CodecError::Invalid(format!("{n} axes exceed the cap")));
            }
            let mut axes = Vec::with_capacity(n);
            for _ in 0..n {
                let lo = body.get_u64()?;
                let hi = body.get_u64()?;
                if lo > hi {
                    return Err(CodecError::Invalid(format!("reversed range {lo}..{hi}")));
                }
                axes.push((lo, hi));
            }
            Ok(axes)
        };
        let query = match kind {
            1 => Query::BoxRange(get_axes(&mut body)?),
            2 => {
                let n = body.get_len(8)?;
                if n > MAX_QUERY_BOXES {
                    return Err(CodecError::Invalid(format!("{n} boxes exceed the cap")));
                }
                let mut boxes = Vec::with_capacity(n);
                for _ in 0..n {
                    boxes.push(get_axes(&mut body)?);
                }
                Query::MultiRange(boxes)
            }
            3 => {
                let n = body.get_len(8)?;
                if n > MAX_QUERY_AXES {
                    return Err(CodecError::Invalid(format!(
                        "{n} coordinates exceed the cap"
                    )));
                }
                let mut coords = Vec::with_capacity(n);
                for _ in 0..n {
                    coords.push(body.get_u64()?);
                }
                Query::Point(coords)
            }
            4 => Query::HierarchyNode {
                level: body.get_u32()?,
                index: body.get_u64()?,
            },
            5 => Query::Total,
            t => return Err(CodecError::Invalid(format!("unknown query kind {t}"))),
        };
        body.finish()?;
        // Structural validation beyond per-field checks (index ranges,
        // multi-range disjointness) is shared with the in-process path.
        query.canonical().map_err(invalid)?;
        Ok(query)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let axes = |f: &mut fmt::Formatter<'_>, axes: &[(u64, u64)]| {
            for (i, (lo, hi)) in axes.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{lo}..{hi}")?;
            }
            Ok(())
        };
        match self {
            Query::BoxRange(a) => axes(f, a),
            Query::MultiRange(boxes) => {
                for (i, b) in boxes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ";")?;
                    }
                    axes(f, b)?;
                }
                Ok(())
            }
            Query::Point(coords) => {
                write!(f, "point ")?;
                for (i, c) in coords.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            Query::HierarchyNode { level, index } => write!(f, "node {level}/{index}"),
            Query::Total => write!(f, "total"),
        }
    }
}

impl Estimate {
    /// Writes the wire representation (one section of five `f64`s).
    pub fn write_wire(&self, w: &mut Writer) {
        w.section(1, |w| {
            w.put_f64(self.value);
            w.put_f64(self.variance);
            w.put_f64(self.lower);
            w.put_f64(self.upper);
            w.put_f64(self.confidence);
        });
    }

    /// Reads the wire representation, rejecting non-finite fields and
    /// inverted intervals (never panics on hostile input).
    pub fn read_wire(r: &mut Reader<'_>) -> Result<Estimate, CodecError> {
        let mut sec = r.expect_section(1)?;
        let value = sec.get_finite_f64()?;
        let variance = sec.get_finite_f64()?;
        let lower = sec.get_finite_f64()?;
        let upper = sec.get_finite_f64()?;
        let confidence = sec.get_finite_f64()?;
        sec.finish()?;
        if lower > upper {
            return Err(CodecError::Invalid(format!(
                "inverted interval [{lower}, {upper}]"
            )));
        }
        if variance < 0.0 {
            return Err(CodecError::Invalid(format!("negative variance {variance}")));
        }
        if !(0.0..=1.0).contains(&confidence) {
            return Err(CodecError::Invalid(format!(
                "confidence {confidence} outside [0, 1]"
            )));
        }
        Ok(Estimate {
            value,
            variance,
            lower,
            upper,
            confidence,
        })
    }
}

/// Encodes a query as a standalone self-describing frame
/// ([`proto::TAG_QUERY`]).
pub fn encode_query(q: &Query) -> Vec<u8> {
    encode_frame(proto::TAG_QUERY, |w| q.write_wire(w))
}

/// Decodes a standalone query frame.
pub fn decode_query(bytes: &[u8]) -> Result<Query, CodecError> {
    let mut frame = open_frame(bytes)?;
    if frame.kind != proto::TAG_QUERY {
        return Err(CodecError::UnknownKind(frame.kind));
    }
    let q = Query::read_wire(&mut frame.body)?;
    frame.body.finish()?;
    Ok(q)
}

/// Encodes an estimate as a standalone self-describing frame
/// ([`proto::TAG_ESTIMATE`]).
pub fn encode_estimate(e: &Estimate) -> Vec<u8> {
    encode_frame(proto::TAG_ESTIMATE, |w| e.write_wire(w))
}

/// Decodes a standalone estimate frame.
pub fn decode_estimate(bytes: &[u8]) -> Result<Estimate, CodecError> {
    let mut frame = open_frame(bytes)?;
    if frame.kind != proto::TAG_ESTIMATE {
        return Err(CodecError::UnknownKind(frame.kind));
    }
    let e = Estimate::read_wire(&mut frame.body)?;
    frame.body.finish()?;
    Ok(e)
}

/// A batch of queries evaluated against one summary in a single pass.
///
/// For sample-based kinds the erased implementation walks the sample items
/// **once**, testing each item against every query, instead of re-walking
/// the sample per query — the win `sas-bench --bin query` measures.
#[derive(Debug, Clone)]
pub struct QueryBatch {
    queries: Vec<Query>,
    confidence: f64,
}

impl QueryBatch {
    /// Builds a batch at the given confidence, validating every query —
    /// and the confidence itself — up front. `confidence` must lie in
    /// `(0, 1]`; 1 is accepted here because deterministic kinds certify
    /// it, but sample-based kinds will refuse it at answer time whenever a
    /// probabilistic bound is actually needed.
    pub fn new(queries: Vec<Query>, confidence: f64) -> Result<Self, QueryError> {
        if !(confidence > 0.0 && confidence <= 1.0) {
            return Err(QueryError::BadConfidence(confidence));
        }
        for q in &queries {
            q.canonical()?;
        }
        Ok(QueryBatch {
            queries,
            confidence,
        })
    }

    /// The queries, in submission order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The confidence every estimate is computed at.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Evaluates the batch: one estimate per query, in order.
    pub fn evaluate(&self, summary: &dyn crate::Summary) -> Result<Vec<Estimate>, QueryError> {
        summary.answer_batch(&self.queries, self.confidence)
    }
}

// --- Shared bound machinery -------------------------------------------------

/// Per-query accumulator for sample-based kinds (stored samples, VarOpt
/// reservoirs): filled in one pass over the items, finished into an
/// [`Estimate`] by [`SampleAccumulator::finish`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SampleAccumulator {
    /// Running estimate — adjusted weights in item order (bit-identical to
    /// the historical `range_sum` accumulation).
    pub value: f64,
    /// Exact part: adjusted weights of heavy keys (`wᵢ ≥ τ`, included with
    /// probability 1).
    pub heavy: f64,
    /// HT estimate of the light part (`τ` per sampled light key).
    pub light_adjusted: f64,
    /// Sampled light keys.
    pub light_count: usize,
    /// HT estimate of `Σ Var[a(i)]`: each sampled light key contributes
    /// `Var[a(i)]/pᵢ = τ·(τ − wᵢ)`.
    pub variance: f64,
}

impl SampleAccumulator {
    /// Folds one in-range item in. Reference form of [`Self::add_classified`]
    /// (which the batch hot loop uses with the classification hoisted);
    /// kept for unit tests pinning the accumulator semantics.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn add(&mut self, weight: f64, adjusted: f64, tau: f64) {
        let light = tau > 0.0 && weight < tau;
        let light_var = if light { tau * (tau - weight) } else { 0.0 };
        self.add_classified(adjusted, tau, light, light_var);
    }

    /// Folds one in-range item whose light/heavy classification and light
    /// variance contribution were hoisted out of a per-query loop (they
    /// depend only on the item, not the query). Bit-identical to
    /// [`Self::add`] with `light = tau > 0.0 && weight < tau` and
    /// `light_var = tau * (tau - weight)`.
    #[inline(always)]
    pub fn add_classified(&mut self, adjusted: f64, tau: f64, light: bool, light_var: f64) {
        self.value += adjusted;
        if light {
            self.light_adjusted += tau;
            self.light_count += 1;
            self.variance += light_var;
        } else {
            self.heavy += adjusted;
        }
    }

    /// Finishes the accumulator into an estimate: heavy part exact, light
    /// part bounded by inverting the paper's Eqn. (4) tail at confidence
    /// `1 − δ` ([`sas_core::bounds::weight_confidence_interval`]).
    pub fn finish(self, tau: f64, confidence: f64) -> Result<Estimate, QueryError> {
        if tau <= 0.0 || self.light_count == 0 {
            // Every in-range key was kept exactly.
            return Ok(Estimate::exact(self.value));
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(QueryError::BadConfidence(confidence));
        }
        let delta = 1.0 - confidence;
        let (lo, hi) =
            sas_core::bounds::weight_confidence_interval(self.light_adjusted, tau, delta);
        Ok(Estimate {
            value: self.value,
            variance: self.variance,
            // Float dust between the split (heavy + light) accumulation and
            // the single-pass value must never push the value outside its
            // own interval.
            lower: (self.heavy + lo).min(self.value),
            upper: (self.heavy + hi).max(self.value),
            confidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_fixtures() -> Vec<Query> {
        vec![
            Query::interval(10, 99),
            Query::BoxRange(vec![(0, 31), (16, 47)]),
            Query::MultiRange(vec![vec![(0, 9)], vec![(20, 29)], vec![(40, 49)]]),
            Query::Point(vec![42]),
            Query::Point(vec![3, 7]),
            Query::HierarchyNode { level: 4, index: 3 },
            Query::Total,
        ]
    }

    #[test]
    fn queries_roundtrip_through_frames() {
        for q in query_fixtures() {
            let bytes = encode_query(&q);
            assert_eq!(decode_query(&bytes).unwrap(), q, "{q}");
        }
    }

    #[test]
    fn estimate_roundtrips_through_frames() {
        let e = Estimate {
            value: 12.5,
            variance: 3.25,
            lower: 8.0,
            upper: 20.0,
            confidence: 0.95,
        };
        let bytes = encode_estimate(&e);
        assert_eq!(decode_estimate(&bytes).unwrap(), e);
        assert_eq!(e.half_width(), 6.0);
    }

    #[test]
    fn canonical_folds_equivalent_spellings() {
        // Full-domain spellings all collapse to Total.
        for q in [
            Query::BoxRange(vec![]),
            Query::BoxRange(vec![(0, u64::MAX)]),
            Query::BoxRange(vec![(0, u64::MAX), (0, u64::MAX)]),
            Query::HierarchyNode {
                level: 64,
                index: 0,
            },
            Query::MultiRange(vec![vec![(0, u64::MAX)]]),
        ] {
            assert_eq!(q.canonical().unwrap(), Query::Total, "{q:?}");
        }
        // Point = degenerate box; node = its span.
        assert_eq!(
            Query::Point(vec![5, 9]).canonical().unwrap(),
            Query::BoxRange(vec![(5, 5), (9, 9)])
        );
        assert_eq!(
            Query::HierarchyNode { level: 3, index: 2 }
                .canonical()
                .unwrap(),
            Query::BoxRange(vec![(16, 23)])
        );
        // Multi-range boxes sort canonically.
        let a = Query::MultiRange(vec![vec![(40, 49)], vec![(0, 9)]]);
        let b = Query::MultiRange(vec![vec![(0, 9)], vec![(40, 49)]]);
        assert_eq!(a.canonical_bytes().unwrap(), b.canonical_bytes().unwrap());
        // …and the canonical bytes of distinct queries differ.
        assert_ne!(
            Query::interval(0, 5).canonical_bytes().unwrap(),
            Query::interval(0, 6).canonical_bytes().unwrap()
        );
    }

    #[test]
    fn invalid_queries_rejected() {
        for q in [
            Query::BoxRange(vec![(9, 3)]),
            Query::Point(vec![]),
            Query::HierarchyNode {
                level: 65,
                index: 0,
            },
            Query::HierarchyNode {
                level: 64,
                index: 1,
            },
            Query::HierarchyNode {
                level: 60,
                index: 16,
            },
            Query::MultiRange(vec![]),
            Query::MultiRange(vec![vec![(0, 10)], vec![(10, 20)]]), // overlap at 10
            Query::MultiRange(vec![vec![(0, 10), (0, 5)], vec![(5, 20)]]), // y-full overlaps
        ] {
            assert!(q.canonical().is_err(), "{q:?} must be rejected");
        }
        // Disjoint on one axis is enough.
        let ok = Query::MultiRange(vec![vec![(0, 10), (0, 5)], vec![(0, 10), (6, 9)]]);
        assert!(ok.canonical().is_ok());
    }

    #[test]
    fn boxes_normalize_to_dims() {
        let q = Query::interval(5, 9);
        assert_eq!(q.boxes(1).unwrap(), vec![vec![(5, 9)]]);
        assert_eq!(q.boxes(2).unwrap(), vec![vec![(5, 9), (0, u64::MAX)]]);
        // More axes than the summary has is an error.
        let q2 = Query::BoxRange(vec![(0, 1), (0, 1)]);
        assert!(q2.boxes(1).is_err());
        assert_eq!(Query::Total.boxes(2).unwrap(), vec![vec![(0, u64::MAX); 2]]);
    }

    #[test]
    fn estimate_wire_rejects_malformed_fields() {
        let enc = |f: fn(&mut Writer)| encode_frame(proto::TAG_ESTIMATE, |w| w.section(1, f));
        // Inverted interval.
        let bytes = enc(|w| {
            for v in [1.0, 0.0, 5.0, 2.0, 0.9] {
                w.put_f64(v);
            }
        });
        assert!(decode_estimate(&bytes).is_err());
        // Confidence beyond 1.
        let bytes = enc(|w| {
            for v in [1.0, 0.0, 0.0, 2.0, 1.5] {
                w.put_f64(v);
            }
        });
        assert!(decode_estimate(&bytes).is_err());
        // NaN value.
        let bytes = enc(|w| {
            w.put_f64(f64::NAN);
            for v in [0.0, 0.0, 2.0, 0.5] {
                w.put_f64(v);
            }
        });
        assert!(decode_estimate(&bytes).is_err());
        // A query frame is not an estimate.
        assert!(matches!(
            decode_estimate(&encode_query(&Query::Total)),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn merge_disjoint_adds_components() {
        let mut a = Estimate {
            value: 10.0,
            variance: 1.0,
            lower: 8.0,
            upper: 12.0,
            confidence: 0.95,
        };
        let b = Estimate {
            value: 5.0,
            variance: 0.5,
            lower: 4.0,
            upper: 7.0,
            confidence: 0.99,
        };
        a.merge_disjoint(&b);
        assert_eq!(a.value, 15.0);
        assert_eq!(a.variance, 1.5);
        assert_eq!(a.lower, 12.0);
        assert_eq!(a.upper, 19.0);
        assert_eq!(a.confidence, 0.95);
    }

    #[test]
    fn display_renders_the_cli_spelling() {
        for (q, text) in [
            (Query::interval(5, 9), "5..9"),
            (Query::BoxRange(vec![(0, 3), (4, 7)]), "0..3,4..7"),
            (
                Query::MultiRange(vec![vec![(0, 1)], vec![(5, 6)]]),
                "0..1;5..6",
            ),
            (Query::Point(vec![3, 7]), "point 3,7"),
            (Query::HierarchyNode { level: 4, index: 3 }, "node 4/3"),
            (Query::Total, "total"),
        ] {
            assert_eq!(q.to_string(), text);
        }
    }

    #[test]
    fn batch_validates_up_front_and_preserves_order() {
        let queries = vec![Query::interval(0, 9), Query::Total];
        let batch = QueryBatch::new(queries.clone(), 0.9).unwrap();
        assert_eq!(batch.queries(), &queries[..]);
        assert_eq!(batch.confidence(), 0.9);
        // A malformed member fails construction, naming the problem.
        let err = QueryBatch::new(vec![Query::BoxRange(vec![(7, 2)])], 0.9).unwrap_err();
        assert!(err.to_string().contains("reversed"), "{err}");
        // So does an out-of-range confidence (NaN included).
        for c in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                QueryBatch::new(vec![Query::Total], c),
                Err(QueryError::BadConfidence(_))
            ));
        }
        assert!(QueryBatch::new(vec![Query::Total], 1.0).is_ok());
    }

    #[test]
    fn hierarchy_node_edges() {
        // Level 0 is a single key.
        assert_eq!(
            Query::HierarchyNode { level: 0, index: 9 }
                .canonical()
                .unwrap(),
            Query::BoxRange(vec![(9, 9)])
        );
        // Top valid index at a level.
        let top = Query::HierarchyNode {
            level: 62,
            index: 3,
        };
        let Query::BoxRange(axes) = top.canonical().unwrap() else {
            panic!("node canonicalizes to a box");
        };
        assert_eq!(axes[0].1, u64::MAX);
        // Level 63, index 1 covers the upper half exactly.
        assert_eq!(
            Query::HierarchyNode {
                level: 63,
                index: 1
            }
            .canonical()
            .unwrap(),
            Query::BoxRange(vec![(1u64 << 63, u64::MAX)])
        );
    }

    #[test]
    fn sample_accumulator_exact_when_no_light_keys() {
        let mut acc = SampleAccumulator::default();
        acc.add(10.0, 10.0, 4.0);
        acc.add(6.0, 6.0, 4.0);
        let e = acc.finish(4.0, 0.9).unwrap();
        assert_eq!(e, Estimate::exact(16.0));
        // τ = 0 (exact summary) is exact regardless of confidence.
        let mut acc = SampleAccumulator::default();
        acc.add(3.0, 3.0, 0.0);
        assert_eq!(acc.finish(0.0, 0.5).unwrap(), Estimate::exact(3.0));
    }

    #[test]
    fn sample_accumulator_bounds_contain_value() {
        let mut acc = SampleAccumulator::default();
        acc.add(10.0, 10.0, 4.0); // heavy
        acc.add(1.0, 4.0, 4.0); // light, inflated to τ
        acc.add(2.0, 4.0, 4.0); // light
        let e = acc.finish(4.0, 0.9).unwrap();
        assert_eq!(e.value, 18.0);
        assert!(e.lower <= e.value && e.value <= e.upper);
        assert!(e.lower >= 10.0, "heavy part is certain: {}", e.lower);
        assert_eq!(e.variance, 4.0 * 3.0 + 4.0 * 2.0);
        assert_eq!(e.confidence, 0.9);
        // Bad confidence is rejected when bounds are actually needed.
        let mut acc = SampleAccumulator::default();
        acc.add(1.0, 4.0, 4.0);
        assert!(matches!(
            acc.finish(4.0, 1.0),
            Err(QueryError::BadConfidence(_))
        ));
    }
}
