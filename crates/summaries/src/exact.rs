//! Exact range sums (ground truth) and the sample-summary adapter.

use std::collections::HashMap;

use sas_core::{KeyId, Sample};
use sas_sampling::product::SpatialData;
use sas_structures::product::{BoxRange, MultiRangeQuery, Point};

use crate::RangeSumSummary;

/// Exact scan-based range-sum engine over spatial data. Used as ground
/// truth by the experiment harness ("asking this many queries over the full
/// data takes 2 minutes" — the baseline the paper compares query speed to).
#[derive(Debug, Clone)]
pub struct ExactEngine {
    points: Vec<(Point, f64)>,
}

impl ExactEngine {
    /// Builds the engine (stores every point).
    pub fn new(data: &SpatialData) -> Self {
        Self {
            points: data
                .keys
                .iter()
                .zip(&data.points)
                .map(|(wk, p)| (p.clone(), wk.weight))
                .collect(),
        }
    }

    /// Exact weight in a box.
    pub fn box_sum(&self, query: &BoxRange) -> f64 {
        self.points
            .iter()
            .filter(|(p, _)| query.contains(p))
            .map(|(_, w)| w)
            .sum()
    }

    /// Exact weight of a multi-range query.
    pub fn multi_sum(&self, query: &MultiRangeQuery) -> f64 {
        self.points
            .iter()
            .filter(|(p, _)| query.contains(p))
            .map(|(_, w)| w)
            .sum()
    }

    /// Total data weight.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|(_, w)| w).sum()
    }
}

impl RangeSumSummary for ExactEngine {
    fn estimate_box(&self, query: &BoxRange) -> f64 {
        self.box_sum(query)
    }

    fn size_elements(&self) -> usize {
        self.points.len()
    }

    fn name(&self) -> &'static str {
        "exact"
    }

    fn estimate_multi(&self, query: &MultiRangeQuery) -> f64 {
        self.multi_sum(query)
    }
}

/// Adapter exposing a [`Sample`] over spatial data through the
/// [`RangeSumSummary`] interface, so samples and dedicated summaries can be
/// driven by the same harness.
#[derive(Debug, Clone)]
pub struct SampleSummary {
    name: &'static str,
    entries: Vec<(Point, f64)>,
    size: usize,
}

impl SampleSummary {
    /// Wraps a sample; locations are looked up in `data`.
    pub fn new(name: &'static str, sample: &Sample, data: &SpatialData) -> Self {
        let point_by_key: HashMap<KeyId, &Point> = data
            .keys
            .iter()
            .zip(&data.points)
            .map(|(wk, p)| (wk.key, p))
            .collect();
        let entries = sample
            .iter()
            .map(|e| {
                (
                    (*point_by_key
                        .get(&e.key)
                        .unwrap_or_else(|| panic!("sampled key {} has no location", e.key)))
                    .clone(),
                    e.adjusted_weight,
                )
            })
            .collect();
        Self {
            name,
            size: sample.len(),
            entries,
        }
    }
}

impl RangeSumSummary for SampleSummary {
    fn estimate_box(&self, query: &BoxRange) -> f64 {
        self.entries
            .iter()
            .filter(|(p, _)| query.contains(p))
            .map(|(_, a)| a)
            .sum()
    }

    fn size_elements(&self) -> usize {
        self.size
    }

    fn name(&self) -> &'static str {
        self.name
    }

    /// One scan answers all rectangles (matches how the paper measures
    /// sample query time).
    fn estimate_multi(&self, query: &MultiRangeQuery) -> f64 {
        self.entries
            .iter()
            .filter(|(p, _)| query.contains(p))
            .map(|(_, a)| a)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_data() -> SpatialData {
        SpatialData::from_xyw(&[(0, 0, 1.0), (5, 5, 2.0), (9, 9, 4.0), (5, 9, 8.0)])
    }

    #[test]
    fn exact_sums() {
        let e = ExactEngine::new(&tiny_data());
        assert_eq!(e.box_sum(&BoxRange::xy(0, 9, 0, 9)), 15.0);
        assert_eq!(e.box_sum(&BoxRange::xy(0, 4, 0, 4)), 1.0);
        assert_eq!(e.box_sum(&BoxRange::xy(5, 5, 5, 9)), 10.0);
        assert_eq!(e.total(), 15.0);
        assert_eq!(e.size_elements(), 4);
    }

    #[test]
    fn exact_multi_counts_once() {
        let e = ExactEngine::new(&tiny_data());
        // Disjoint boxes.
        let q = MultiRangeQuery::new(vec![BoxRange::xy(0, 1, 0, 1), BoxRange::xy(9, 9, 9, 9)]);
        assert_eq!(e.multi_sum(&q), 5.0);
    }

    #[test]
    fn sample_adapter_estimates() {
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(1);
        let smp = sas_sampling::product::sample(&data, 4, &mut rng);
        let adapter = SampleSummary::new("aware", &smp, &data);
        // Full sample (s = n): estimates are exact.
        assert!((adapter.estimate_box(&BoxRange::xy(0, 9, 0, 9)) - 15.0).abs() < 1e-9);
        assert_eq!(adapter.name(), "aware");
        assert_eq!(adapter.size_elements(), 4);
    }
}
