//! [`StoredSample`] — a finished sample as a durable, mergeable summary.
//!
//! This is the persistent form of the paper's headline object: the sampled
//! keys with their Horvitz–Thompson adjusted weights (plus locations for
//! 2-D data), self-contained enough to answer any subset-sum query without
//! the underlying data set. The CLI's TSV summaries and the binary frames
//! of `sas-codec` both load into this type.

use std::collections::{HashMap, HashSet};

use sas_core::estimate::{Sample, SampleEntry};
use sas_core::KeyId;
use sas_structures::product::{BoxRange, Point};

/// A finished sample with optional 2-D locations.
#[derive(Debug, Clone)]
pub struct StoredSample {
    sample: Sample,
    /// Location per sampled key (empty for 1-D, where keys are positions).
    points: HashMap<KeyId, Point>,
    dims: usize,
}

impl StoredSample {
    /// Wraps a 1-D sample (keys are positions on the line).
    pub fn one_dim(sample: Sample) -> Self {
        Self {
            sample,
            points: HashMap::new(),
            dims: 1,
        }
    }

    /// Wraps a 2-D sample; every sampled key must have a location.
    pub fn two_dim(sample: Sample, points: HashMap<KeyId, Point>) -> Result<Self, String> {
        for e in sample.iter() {
            match points.get(&e.key) {
                None => return Err(format!("sampled key {} has no location", e.key)),
                Some(p) if p.dim() != 2 => {
                    return Err(format!("key {} has a {}-D location", e.key, p.dim()))
                }
                Some(_) => {}
            }
        }
        Ok(Self {
            sample,
            points,
            dims: 2,
        })
    }

    /// The underlying sample.
    pub fn sample(&self) -> &Sample {
        &self.sample
    }

    /// The location map (empty for 1-D summaries).
    pub fn points(&self) -> &HashMap<KeyId, Point> {
        &self.points
    }

    /// Dimensionality (1 or 2).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// HT estimate of the weight inside an axis-aligned range
    /// (`range[0]` on the key line for 1-D; `range[0]`, `range[1]` as a box
    /// for 2-D). Missing axes default to the full domain.
    pub fn range_sum(&self, range: &[(u64, u64)]) -> f64 {
        let axis = |i: usize| range.get(i).copied().unwrap_or((0, u64::MAX));
        match self.dims {
            1 => {
                let (lo, hi) = axis(0);
                self.sample.subset_estimate(|k| (lo..=hi).contains(&k))
            }
            _ => {
                let (x0, x1) = axis(0);
                let (y0, y1) = axis(1);
                let b = BoxRange::xy(x0, x1, y0, y1);
                self.sample
                    .subset_estimate(|k| self.points.get(&k).is_some_and(|p| b.contains(p)))
            }
        }
    }

    /// Merges a sample of disjoint data.
    ///
    /// With `budget: None` the entries are concatenated (each keeps the
    /// adjusted weight its own sampler assigned — exact and unbiased, but
    /// the size grows). With `budget: Some(s)` the union is re-subsampled
    /// down to `s` entries by the structure-aware threshold merge
    /// (`sas_sampling::sharded::merge_samples`), which aggregates in key
    /// order and conserves the total exactly.
    pub fn merge<R: rand::Rng + ?Sized>(
        &mut self,
        other: StoredSample,
        budget: Option<usize>,
        rng: &mut R,
    ) -> Result<(), String> {
        if self.dims != other.dims {
            return Err(format!(
                "cannot merge a {}-D sample into a {}-D sample",
                other.dims, self.dims
            ));
        }
        let mine = std::mem::take(&mut self.sample);
        self.sample = match budget {
            Some(s) if s > 0 => sas_sampling::sharded::merge_samples(mine, other.sample, s, rng),
            Some(_) => return Err("merge budget must be positive".into()),
            None => {
                let mut m = mine;
                m.merge(other.sample);
                m
            }
        };
        if self.dims == 2 {
            self.points.extend(other.points);
            // Re-subsampling may have dropped keys; keep the location map
            // aligned with the surviving entries so size stays honest.
            let kept: HashSet<KeyId> = self.sample.keys().collect();
            self.points.retain(|k, _| kept.contains(k));
        }
        Ok(())
    }

    /// Writes the wire representation (see `sas-codec` for the framing).
    pub(crate) fn write_wire(&self, w: &mut sas_codec::Writer) {
        w.section(1, |w| {
            w.put_u8(self.dims as u8);
            w.put_f64(self.sample.tau());
        });
        w.section(2, |w| {
            w.put_u64(self.sample.len() as u64);
            for e in self.sample.iter() {
                w.put_u64(e.key);
                w.put_f64(e.weight);
                w.put_f64(e.adjusted_weight);
            }
        });
        w.section(3, |w| {
            if self.dims == 2 {
                // Locations aligned with the entry order of section 2.
                w.put_u64(self.sample.len() as u64);
                for e in self.sample.iter() {
                    let p = &self.points[&e.key];
                    w.put_u64(p.coord(0));
                    w.put_u64(p.coord(1));
                }
            } else {
                w.put_u64(0);
            }
        });
    }

    /// Reads the wire representation (never panics on corrupted input).
    pub(crate) fn read_wire(r: &mut sas_codec::Reader<'_>) -> Result<Self, sas_codec::CodecError> {
        use sas_codec::CodecError;
        let mut meta = r.expect_section(1)?;
        let dims = meta.get_u8()? as usize;
        let tau = meta.get_finite_f64()?;
        meta.finish()?;
        if dims != 1 && dims != 2 {
            return Err(CodecError::Invalid(format!("unsupported dims {dims}")));
        }
        if tau < 0.0 {
            return Err(CodecError::Invalid(format!("negative threshold {tau}")));
        }
        let mut body = r.expect_section(2)?;
        let n = body.get_len(24)?; // u64 + 2×f64 per entry
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let key = body.get_u64()?;
            let weight = body.get_finite_f64()?;
            let adjusted_weight = body.get_finite_f64()?;
            if weight < 0.0 || adjusted_weight < 0.0 {
                return Err(CodecError::Invalid(format!("negative weight on key {key}")));
            }
            entries.push(SampleEntry {
                key,
                weight,
                adjusted_weight,
            });
        }
        body.finish()?;
        let mut locs = r.expect_section(3)?;
        let n_points = locs.get_len(16)?; // 2×u64 per point
        let expected = if dims == 2 { entries.len() } else { 0 };
        if n_points != expected {
            return Err(CodecError::Invalid(format!(
                "{n_points} locations for {expected} expected"
            )));
        }
        let mut points = HashMap::with_capacity(n_points);
        for e in entries.iter().take(n_points) {
            let x = locs.get_u64()?;
            let y = locs.get_u64()?;
            points.insert(e.key, Point::xy(x, y));
        }
        locs.finish()?;
        Ok(Self {
            sample: Sample::from_entries(entries, tau),
            points,
            dims,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(key: KeyId, w: f64, a: f64) -> SampleEntry {
        SampleEntry {
            key,
            weight: w,
            adjusted_weight: a,
        }
    }

    #[test]
    fn one_dim_range_sums() {
        let s = StoredSample::one_dim(Sample::from_entries(
            vec![entry(1, 2.0, 4.0), entry(5, 9.0, 9.0), entry(9, 1.0, 4.0)],
            4.0,
        ));
        assert_eq!(s.dims(), 1);
        assert_eq!(s.range_sum(&[(0, 4)]), 4.0);
        assert_eq!(s.range_sum(&[(1, 9)]), 17.0);
        assert_eq!(s.range_sum(&[]), 17.0); // missing axis = full domain
    }

    #[test]
    fn two_dim_requires_locations() {
        let sample = Sample::from_entries(vec![entry(1, 2.0, 2.0)], 0.0);
        assert!(StoredSample::two_dim(sample.clone(), HashMap::new()).is_err());
        let mut points = HashMap::new();
        points.insert(1, Point::xy(3, 4));
        let s = StoredSample::two_dim(sample, points).unwrap();
        assert_eq!(s.range_sum(&[(0, 9), (0, 9)]), 2.0);
        assert_eq!(s.range_sum(&[(0, 2), (0, 9)]), 0.0);
    }

    #[test]
    fn concat_merge_extends() {
        let mut a = StoredSample::one_dim(Sample::from_entries(vec![entry(1, 2.0, 4.0)], 4.0));
        let b = StoredSample::one_dim(Sample::from_entries(vec![entry(2, 3.0, 3.0)], 1.0));
        let mut rng = StdRng::seed_from_u64(1);
        a.merge(b, None, &mut rng).unwrap();
        assert_eq!(a.sample().len(), 2);
        assert_eq!(a.range_sum(&[(0, 10)]), 7.0);
    }

    #[test]
    fn budget_merge_respects_size_and_total() {
        let entries_a: Vec<SampleEntry> = (0..30).map(|k| entry(k, 1.0, 2.0)).collect();
        let entries_b: Vec<SampleEntry> = (30..60).map(|k| entry(k, 1.0, 2.0)).collect();
        let mut a = StoredSample::one_dim(Sample::from_entries(entries_a, 2.0));
        let b = StoredSample::one_dim(Sample::from_entries(entries_b, 2.0));
        let mut rng = StdRng::seed_from_u64(2);
        a.merge(b, Some(20), &mut rng).unwrap();
        assert_eq!(a.sample().len(), 20);
        assert!((a.range_sum(&[(0, 59)]) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn dims_mismatch_rejected() {
        let mut a = StoredSample::one_dim(Sample::from_entries(vec![entry(1, 1.0, 1.0)], 0.0));
        let mut points = HashMap::new();
        points.insert(2, Point::xy(0, 0));
        let b = StoredSample::two_dim(Sample::from_entries(vec![entry(2, 1.0, 1.0)], 0.0), points)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(a.merge(b, None, &mut rng).is_err());
    }

    #[test]
    fn budget_merge_prunes_stale_locations() {
        let mk = |range: std::ops::Range<u64>| {
            let entries: Vec<SampleEntry> = range.clone().map(|k| entry(k, 1.0, 2.0)).collect();
            let points: HashMap<KeyId, Point> = range.map(|k| (k, Point::xy(k, k))).collect();
            StoredSample::two_dim(Sample::from_entries(entries, 2.0), points).unwrap()
        };
        let mut a = mk(0..25);
        let b = mk(25..50);
        let mut rng = StdRng::seed_from_u64(4);
        a.merge(b, Some(10), &mut rng).unwrap();
        assert_eq!(a.sample().len(), 10);
        assert_eq!(a.points().len(), 10);
    }
}
