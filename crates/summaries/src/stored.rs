//! [`StoredSample`] — a finished sample as a durable, mergeable summary.
//!
//! This is the persistent form of the paper's headline object: the sampled
//! keys with their Horvitz–Thompson adjusted weights (plus locations for
//! 2-D data), self-contained enough to answer any subset-sum query without
//! the underlying data set. The CLI's TSV summaries and the binary frames
//! of `sas-codec` both load into this type.
//!
//! ## Layout
//!
//! The sample is held as a struct of arrays: parallel `keys` / `weights` /
//! `adjusted` columns, plus `xs` / `ys` location columns for 2-D data. A
//! range test over the summary is then a tight scan of two or three
//! columns — no per-item hash-map lookup, no pointer chasing — which is
//! what makes `answer_batch` over thousands of queries cheap. Columns keep
//! **entry order** (the order the sampler or merge produced), because the
//! v1 wire format serializes entries in that order and the encoding must
//! stay bit-identical to the original array-of-structs layout.

use std::collections::HashMap;

use sas_core::estimate::{Sample, SampleEntry};
use sas_core::KeyId;
use sas_sampling::sharded::MergeArena;
use sas_structures::product::Point;

/// A finished sample with optional 2-D locations, stored as parallel
/// columns in entry order (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct StoredSample {
    keys: Vec<KeyId>,
    weights: Vec<f64>,
    adjusted: Vec<f64>,
    /// Per-entry locations, aligned with `keys` (empty for 1-D, where the
    /// keys themselves are positions on the line).
    xs: Vec<u64>,
    ys: Vec<u64>,
    tau: f64,
    dims: usize,
}

impl StoredSample {
    /// Wraps a 1-D sample (keys are positions on the line).
    pub fn one_dim(sample: Sample) -> Self {
        let tau = sample.tau();
        let entries = sample.into_entries();
        let mut s = Self {
            keys: Vec::with_capacity(entries.len()),
            weights: Vec::with_capacity(entries.len()),
            adjusted: Vec::with_capacity(entries.len()),
            xs: Vec::new(),
            ys: Vec::new(),
            tau,
            dims: 1,
        };
        for e in entries {
            s.keys.push(e.key);
            s.weights.push(e.weight);
            s.adjusted.push(e.adjusted_weight);
        }
        s
    }

    /// Wraps a 2-D sample; every sampled key must have a location.
    pub fn two_dim(sample: Sample, points: HashMap<KeyId, Point>) -> Result<Self, String> {
        let tau = sample.tau();
        let entries = sample.into_entries();
        let mut s = Self {
            keys: Vec::with_capacity(entries.len()),
            weights: Vec::with_capacity(entries.len()),
            adjusted: Vec::with_capacity(entries.len()),
            xs: Vec::with_capacity(entries.len()),
            ys: Vec::with_capacity(entries.len()),
            tau,
            dims: 2,
        };
        for e in entries {
            match points.get(&e.key) {
                None => return Err(format!("sampled key {} has no location", e.key)),
                Some(p) if p.dim() != 2 => {
                    return Err(format!("key {} has a {}-D location", e.key, p.dim()))
                }
                Some(p) => {
                    s.xs.push(p.coord(0));
                    s.ys.push(p.coord(1));
                }
            }
            s.keys.push(e.key);
            s.weights.push(e.weight);
            s.adjusted.push(e.adjusted_weight);
        }
        Ok(s)
    }

    /// Number of sampled entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The IPPS threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Dimensionality (1 or 2).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The key column (entry order).
    pub fn keys(&self) -> &[KeyId] {
        &self.keys
    }

    /// The original-weight column, aligned with [`StoredSample::keys`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The HT adjusted-weight column, aligned with [`StoredSample::keys`].
    pub fn adjusted_weights(&self) -> &[f64] {
        &self.adjusted
    }

    /// The x-coordinate column (empty for 1-D summaries).
    pub fn xs(&self) -> &[u64] {
        &self.xs
    }

    /// The y-coordinate column (empty for 1-D summaries).
    pub fn ys(&self) -> &[u64] {
        &self.ys
    }

    /// HT estimate of the total data weight.
    pub fn total_estimate(&self) -> f64 {
        self.adjusted.iter().sum()
    }

    /// Materializes the underlying sample (entry order preserved).
    pub fn to_sample(&self) -> Sample {
        let entries = (0..self.keys.len())
            .map(|i| SampleEntry {
                key: self.keys[i],
                weight: self.weights[i],
                adjusted_weight: self.adjusted[i],
            })
            .collect();
        Sample::from_entries(entries, self.tau)
    }

    /// The location map (empty for 1-D summaries). Built on demand — the
    /// hot paths read the coordinate columns directly.
    pub fn point_map(&self) -> HashMap<KeyId, Point> {
        self.keys
            .iter()
            .zip(self.xs.iter().zip(&self.ys))
            .map(|(&k, (&x, &y))| (k, Point::xy(x, y)))
            .collect()
    }

    /// HT estimate of the weight inside an axis-aligned range
    /// (`range[0]` on the key line for 1-D; `range[0]`, `range[1]` as a box
    /// for 2-D). Missing axes default to the full domain. Folds from +0.0
    /// in entry order — bit-identical to the query accumulator, including
    /// on ranges matching nothing (`Iterator::sum` would give -0.0 there).
    pub fn range_sum(&self, range: &[(u64, u64)]) -> f64 {
        let axis = |i: usize| range.get(i).copied().unwrap_or((0, u64::MAX));
        match self.dims {
            1 => {
                let (lo, hi) = axis(0);
                self.keys
                    .iter()
                    .zip(&self.adjusted)
                    .filter(|(&k, _)| lo <= k && k <= hi)
                    .fold(0.0, |acc, (_, &a)| acc + a)
            }
            _ => {
                let (x0, x1) = axis(0);
                let (y0, y1) = axis(1);
                self.xs
                    .iter()
                    .zip(&self.ys)
                    .zip(&self.adjusted)
                    .filter(|((&x, &y), _)| x0 <= x && x <= x1 && y0 <= y && y <= y1)
                    .fold(0.0, |acc, (_, &a)| acc + a)
            }
        }
    }

    /// Merges a sample of disjoint data.
    ///
    /// With `budget: None` the entries are concatenated (each keeps the
    /// adjusted weight its own sampler assigned — exact and unbiased, but
    /// the size grows). With `budget: Some(s)` the union is re-subsampled
    /// down to `s` entries by the structure-aware threshold merge
    /// (`sas_sampling::sharded::merge_samples`), which aggregates in key
    /// order and conserves the total exactly.
    pub fn merge<R: rand::Rng + ?Sized>(
        &mut self,
        other: StoredSample,
        budget: Option<usize>,
        rng: &mut R,
    ) -> Result<(), String> {
        self.merge_with(other, budget, rng, &mut MergeArena::new())
    }

    /// [`StoredSample::merge`] with caller-provided scratch buffers —
    /// bit-identical to it for any arena state. A merge tree or compaction
    /// pass threads one [`MergeArena`] through every merge to amortize the
    /// per-merge allocations away.
    pub fn merge_with<R: rand::Rng + ?Sized>(
        &mut self,
        other: StoredSample,
        budget: Option<usize>,
        rng: &mut R,
        arena: &mut MergeArena,
    ) -> Result<(), String> {
        if self.dims != other.dims {
            return Err(format!(
                "cannot merge a {}-D sample into a {}-D sample",
                other.dims, self.dims
            ));
        }
        match budget {
            Some(s) if s > 0 => {
                // Per-key locations survive the re-subsampling through the
                // arena's coordinate scratch (later inserts win, matching
                // the historical map-extend semantics).
                let coords = (self.dims == 2).then(|| {
                    let mut m = arena.take_coords();
                    for i in 0..self.keys.len() {
                        m.insert(self.keys[i], (self.xs[i], self.ys[i]));
                    }
                    for i in 0..other.keys.len() {
                        m.insert(other.keys[i], (other.xs[i], other.ys[i]));
                    }
                    m
                });
                let mine = self.take_sample(arena);
                let theirs = other.into_sample(arena);
                let merged = sas_sampling::sharded::merge_samples_with(mine, theirs, s, rng, arena);
                let result = self.load_sample(merged, coords.as_ref(), arena);
                if let Some(m) = coords {
                    arena.put_coords(m);
                }
                result
            }
            Some(_) => Err("merge budget must be positive".into()),
            None => {
                // Concatenation: extend every column; each entry keeps its
                // own adjusted weight and location.
                self.tau = self.tau.max(other.tau);
                self.keys.extend_from_slice(&other.keys);
                self.weights.extend_from_slice(&other.weights);
                self.adjusted.extend_from_slice(&other.adjusted);
                self.xs.extend_from_slice(&other.xs);
                self.ys.extend_from_slice(&other.ys);
                Ok(())
            }
        }
    }

    /// Drains the columns into a `Sample` backed by an arena buffer.
    fn take_sample(&mut self, arena: &mut MergeArena) -> Sample {
        let mut entries = arena.take_entries();
        entries.extend((0..self.keys.len()).map(|i| SampleEntry {
            key: self.keys[i],
            weight: self.weights[i],
            adjusted_weight: self.adjusted[i],
        }));
        self.keys.clear();
        self.weights.clear();
        self.adjusted.clear();
        self.xs.clear();
        self.ys.clear();
        Sample::from_entries(entries, self.tau)
    }

    /// Consumes `self` into a `Sample` backed by an arena buffer.
    fn into_sample(mut self, arena: &mut MergeArena) -> Sample {
        self.take_sample(arena)
    }

    /// Refills the columns from a merged sample, resolving 2-D locations
    /// through `coords`; returns the entry buffer to the arena.
    fn load_sample(
        &mut self,
        merged: Sample,
        coords: Option<&HashMap<KeyId, (u64, u64)>>,
        arena: &mut MergeArena,
    ) -> Result<(), String> {
        self.tau = merged.tau();
        let entries = merged.into_entries();
        for e in &entries {
            self.keys.push(e.key);
            self.weights.push(e.weight);
            self.adjusted.push(e.adjusted_weight);
            if let Some(m) = coords {
                let &(x, y) = m
                    .get(&e.key)
                    .ok_or_else(|| format!("merged key {} has no location", e.key))?;
                self.xs.push(x);
                self.ys.push(y);
            }
        }
        arena.recycle_entries(entries);
        Ok(())
    }

    /// Reassembles a sample from already-validated columns. The segment
    /// view layer (`crate::view`) enforces the same invariants the wire
    /// decoder does before calling this.
    pub(crate) fn from_columns(
        keys: Vec<KeyId>,
        weights: Vec<f64>,
        adjusted: Vec<f64>,
        xs: Vec<u64>,
        ys: Vec<u64>,
        tau: f64,
        dims: usize,
    ) -> Self {
        Self {
            keys,
            weights,
            adjusted,
            xs,
            ys,
            tau,
            dims,
        }
    }

    /// Writes the wire representation (see `sas-codec` for the framing).
    /// Entries are serialized in column (= entry) order, bit-identical to
    /// the format the original array-of-structs layout produced.
    pub(crate) fn write_wire(&self, w: &mut sas_codec::Writer) {
        w.section(1, |w| {
            w.put_u8(self.dims as u8);
            w.put_f64(self.tau);
        });
        w.section(2, |w| {
            w.put_u64(self.keys.len() as u64);
            for i in 0..self.keys.len() {
                w.put_u64(self.keys[i]);
                w.put_f64(self.weights[i]);
                w.put_f64(self.adjusted[i]);
            }
        });
        w.section(3, |w| {
            if self.dims == 2 {
                // Locations aligned with the entry order of section 2.
                w.put_u64(self.keys.len() as u64);
                for i in 0..self.keys.len() {
                    w.put_u64(self.xs[i]);
                    w.put_u64(self.ys[i]);
                }
            } else {
                w.put_u64(0);
            }
        });
    }

    /// Reads the wire representation (never panics on corrupted input).
    pub(crate) fn read_wire(r: &mut sas_codec::Reader<'_>) -> Result<Self, sas_codec::CodecError> {
        use sas_codec::CodecError;
        let mut meta = r.expect_section(1)?;
        let dims = meta.get_u8()? as usize;
        let tau = meta.get_finite_f64()?;
        meta.finish()?;
        if dims != 1 && dims != 2 {
            return Err(CodecError::Invalid(format!("unsupported dims {dims}")));
        }
        if tau < 0.0 {
            return Err(CodecError::Invalid(format!("negative threshold {tau}")));
        }
        let mut body = r.expect_section(2)?;
        let n = body.get_len(24)?; // u64 + 2×f64 per entry
        let mut s = Self {
            keys: Vec::with_capacity(n),
            weights: Vec::with_capacity(n),
            adjusted: Vec::with_capacity(n),
            xs: Vec::new(),
            ys: Vec::new(),
            tau,
            dims,
        };
        for _ in 0..n {
            let key = body.get_u64()?;
            let weight = body.get_finite_f64()?;
            let adjusted_weight = body.get_finite_f64()?;
            if weight < 0.0 || adjusted_weight < 0.0 {
                return Err(CodecError::Invalid(format!("negative weight on key {key}")));
            }
            s.keys.push(key);
            s.weights.push(weight);
            s.adjusted.push(adjusted_weight);
        }
        body.finish()?;
        let mut locs = r.expect_section(3)?;
        let n_points = locs.get_len(16)?; // 2×u64 per point
        let expected = if dims == 2 { n } else { 0 };
        if n_points != expected {
            return Err(CodecError::Invalid(format!(
                "{n_points} locations for {expected} expected"
            )));
        }
        s.xs.reserve(n_points);
        s.ys.reserve(n_points);
        for _ in 0..n_points {
            s.xs.push(locs.get_u64()?);
            s.ys.push(locs.get_u64()?);
        }
        locs.finish()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(key: KeyId, w: f64, a: f64) -> SampleEntry {
        SampleEntry {
            key,
            weight: w,
            adjusted_weight: a,
        }
    }

    #[test]
    fn one_dim_range_sums() {
        let s = StoredSample::one_dim(Sample::from_entries(
            vec![entry(1, 2.0, 4.0), entry(5, 9.0, 9.0), entry(9, 1.0, 4.0)],
            4.0,
        ));
        assert_eq!(s.dims(), 1);
        assert_eq!(s.range_sum(&[(0, 4)]), 4.0);
        assert_eq!(s.range_sum(&[(1, 9)]), 17.0);
        assert_eq!(s.range_sum(&[]), 17.0); // missing axis = full domain
    }

    #[test]
    fn two_dim_requires_locations() {
        let sample = Sample::from_entries(vec![entry(1, 2.0, 2.0)], 0.0);
        assert!(StoredSample::two_dim(sample.clone(), HashMap::new()).is_err());
        let mut points = HashMap::new();
        points.insert(1, Point::xy(3, 4));
        let s = StoredSample::two_dim(sample, points).unwrap();
        assert_eq!(s.range_sum(&[(0, 9), (0, 9)]), 2.0);
        assert_eq!(s.range_sum(&[(0, 2), (0, 9)]), 0.0);
    }

    #[test]
    fn columns_preserve_entry_order() {
        let s = StoredSample::one_dim(Sample::from_entries(
            vec![entry(9, 1.0, 4.0), entry(1, 2.0, 4.0), entry(5, 9.0, 9.0)],
            4.0,
        ));
        // Entry order is the wire order — never silently re-sorted.
        assert_eq!(s.keys(), &[9, 1, 5]);
        assert_eq!(s.weights(), &[1.0, 2.0, 9.0]);
        assert_eq!(s.adjusted_weights(), &[4.0, 4.0, 9.0]);
        let round = s.to_sample();
        let keys: Vec<_> = round.keys().collect();
        assert_eq!(keys, vec![9, 1, 5]);
        assert_eq!(round.tau(), 4.0);
    }

    #[test]
    fn concat_merge_extends() {
        let mut a = StoredSample::one_dim(Sample::from_entries(vec![entry(1, 2.0, 4.0)], 4.0));
        let b = StoredSample::one_dim(Sample::from_entries(vec![entry(2, 3.0, 3.0)], 1.0));
        let mut rng = StdRng::seed_from_u64(1);
        a.merge(b, None, &mut rng).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.tau(), 4.0);
        assert_eq!(a.range_sum(&[(0, 10)]), 7.0);
    }

    #[test]
    fn budget_merge_respects_size_and_total() {
        let entries_a: Vec<SampleEntry> = (0..30).map(|k| entry(k, 1.0, 2.0)).collect();
        let entries_b: Vec<SampleEntry> = (30..60).map(|k| entry(k, 1.0, 2.0)).collect();
        let mut a = StoredSample::one_dim(Sample::from_entries(entries_a, 2.0));
        let b = StoredSample::one_dim(Sample::from_entries(entries_b, 2.0));
        let mut rng = StdRng::seed_from_u64(2);
        a.merge(b, Some(20), &mut rng).unwrap();
        assert_eq!(a.len(), 20);
        assert!((a.range_sum(&[(0, 59)]) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn dims_mismatch_rejected() {
        let mut a = StoredSample::one_dim(Sample::from_entries(vec![entry(1, 1.0, 1.0)], 0.0));
        let mut points = HashMap::new();
        points.insert(2, Point::xy(0, 0));
        let b = StoredSample::two_dim(Sample::from_entries(vec![entry(2, 1.0, 1.0)], 0.0), points)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(a.merge(b, None, &mut rng).is_err());
    }

    #[test]
    fn budget_merge_prunes_stale_locations() {
        let mk = |range: std::ops::Range<u64>| {
            let entries: Vec<SampleEntry> = range.clone().map(|k| entry(k, 1.0, 2.0)).collect();
            let points: HashMap<KeyId, Point> = range.map(|k| (k, Point::xy(k, k))).collect();
            StoredSample::two_dim(Sample::from_entries(entries, 2.0), points).unwrap()
        };
        let mut a = mk(0..25);
        let b = mk(25..50);
        let mut rng = StdRng::seed_from_u64(4);
        a.merge(b, Some(10), &mut rng).unwrap();
        assert_eq!(a.len(), 10);
        // Location columns stay aligned with the surviving entries.
        assert_eq!(a.xs().len(), 10);
        assert_eq!(a.ys().len(), 10);
        assert_eq!(a.point_map().len(), 10);
        for (i, &k) in a.keys().iter().enumerate() {
            assert_eq!((a.xs()[i], a.ys()[i]), (k, k));
        }
    }

    #[test]
    fn merge_with_reused_arena_matches_fresh_merge() {
        // The same pair of 2-D summaries merged through a dirty arena and
        // through the allocating path must encode to identical bytes.
        let mk = |lo: u64, hi: u64, tau: f64| {
            let entries: Vec<SampleEntry> = (lo..hi).map(|k| entry(k, 1.0, tau.max(1.0))).collect();
            let points: HashMap<KeyId, Point> =
                (lo..hi).map(|k| (k, Point::xy(k % 7, k % 11))).collect();
            StoredSample::two_dim(Sample::from_entries(entries, tau), points).unwrap()
        };
        let mut arena = MergeArena::new();
        for seed in 0..20u64 {
            let mut fresh = mk(0, 40, 2.0);
            let mut reused = mk(0, 40, 2.0);
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            fresh.merge(mk(40, 80, 1.5), Some(25), &mut r1).unwrap();
            reused
                .merge_with(mk(40, 80, 1.5), Some(25), &mut r2, &mut arena)
                .unwrap();
            assert_eq!(fresh.keys(), reused.keys(), "seed {seed}");
            assert_eq!(fresh.xs(), reused.xs(), "seed {seed}");
            assert_eq!(fresh.ys(), reused.ys(), "seed {seed}");
            assert_eq!(fresh.tau().to_bits(), reused.tau().to_bits(), "seed {seed}");
        }
    }
}
