//! Count-sketch over dyadic rectangles — the "Sketch" baseline of
//! Section 6 [Charikar–Chen–Farach-Colton, ICALP 2002].
//!
//! One Count-sketch is kept per dyadic level pair `(ℓx, ℓy)`; each input
//! point updates the cell `(x ≫ ℓx, y ≫ ℓy)` in every sketch — the
//! `O(log X · log Y)` per-point update cost the paper measures (1024× for
//! 32-bit addresses). A box query is decomposed canonically into dyadic
//! rectangles, each estimated from its level-pair sketch by the median of
//! signed counters.
//!
//! As the paper observes, the space at which the sketch becomes accurate on
//! two-dimensional data is much larger than for the other summaries.

use sas_core::Mergeable;
use sas_sampling::product::SpatialData;
use sas_structures::dyadic;
use sas_structures::product::BoxRange;

use crate::RangeSumSummary;

/// Number of independent rows per sketch (median-of-rows estimator).
const ROWS: usize = 3;

/// One Count-sketch: `ROWS` rows of `width` signed counters.
#[derive(Debug, Clone)]
struct CountSketch {
    width: usize,
    counters: Vec<f64>, // ROWS * width
    seeds: [u64; ROWS],
}

/// Fast 64-bit mix (splitmix64 finalizer) used for both bucket and sign
/// hashes.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CountSketch {
    fn new(width: usize, seed: u64) -> Self {
        Self {
            width: width.max(1),
            counters: vec![0.0; ROWS * width.max(1)],
            seeds: [mix(seed), mix(seed ^ 0xdead_beef), mix(seed ^ 0x1234_5678)],
        }
    }

    fn update(&mut self, item: u64, weight: f64) {
        for (r, &seed) in self.seeds.iter().enumerate() {
            let h = mix(item ^ seed);
            let bucket = (h % self.width as u64) as usize;
            let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
            self.counters[r * self.width + bucket] += sign * weight;
        }
    }

    /// Median of the per-row estimates plus their sample variance — the
    /// spread of the independent rows is the sketch's own error signal.
    fn estimate_stats(&self, item: u64) -> (f64, f64) {
        let mut ests = [0.0; ROWS];
        for (r, &seed) in self.seeds.iter().enumerate() {
            let h = mix(item ^ seed);
            let bucket = (h % self.width as u64) as usize;
            let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
            ests[r] = sign * self.counters[r * self.width + bucket];
        }
        ests.sort_by(f64::total_cmp);
        let median = ests[ROWS / 2];
        let mean: f64 = ests.iter().sum::<f64>() / ROWS as f64;
        let variance: f64 =
            ests.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / (ROWS as f64 - 1.0);
        (median, variance)
    }
}

/// The dyadic-rectangle Count-sketch summary.
#[derive(Debug, Clone)]
pub struct SketchSummary {
    /// sketches[lx][ly]
    sketches: Vec<Vec<CountSketch>>,
    bits_x: u32,
    bits_y: u32,
}

impl SketchSummary {
    /// Builds the summary with a total budget of `s` counters split evenly
    /// across the `(bits_x + 1)(bits_y + 1)` level-pair sketches.
    pub fn build(data: &SpatialData, bits_x: u32, bits_y: u32, s: usize, seed: u64) -> Self {
        let pairs = ((bits_x + 1) * (bits_y + 1)) as usize;
        let width = (s / (pairs * ROWS)).max(1);
        let mut sketches: Vec<Vec<CountSketch>> = (0..=bits_x)
            .map(|lx| {
                (0..=bits_y)
                    .map(|ly| CountSketch::new(width, seed ^ ((lx as u64) << 32) ^ ly as u64))
                    .collect()
            })
            .collect();
        for (wk, p) in data.keys.iter().zip(&data.points) {
            if wk.weight == 0.0 {
                continue;
            }
            let (x, y) = (p.coord(0), p.coord(1));
            for lx in 0..=bits_x {
                for ly in 0..=bits_y {
                    let cell = cell_id(x >> lx, y >> ly);
                    sketches[lx as usize][ly as usize].update(cell, wk.weight);
                }
            }
        }
        Self {
            sketches,
            bits_x,
            bits_y,
        }
    }

    /// Merges a sketch of disjoint data by counter addition (linearity:
    /// the result is identical to a sketch built over the union). Fails
    /// without mutating `self` if the geometries (domain bits, counter
    /// width, hash seeds) differ — adding counters hashed differently
    /// would be meaningless.
    pub fn try_merge(&mut self, other: Self) -> Result<(), String> {
        if (self.bits_x, self.bits_y) != (other.bits_x, other.bits_y) {
            return Err(format!(
                "sketch domain mismatch: 2^{}×2^{} vs 2^{}×2^{}",
                self.bits_x, self.bits_y, other.bits_x, other.bits_y
            ));
        }
        for (rows_a, rows_b) in self.sketches.iter().zip(&other.sketches) {
            for (a, b) in rows_a.iter().zip(rows_b) {
                if a.width != b.width {
                    return Err("sketch width mismatch".into());
                }
                if a.seeds != b.seeds {
                    return Err("sketch seed mismatch".into());
                }
            }
        }
        for (rows_a, rows_b) in self.sketches.iter_mut().zip(other.sketches) {
            for (a, b) in rows_a.iter_mut().zip(rows_b) {
                for (ca, cb) in a.counters.iter_mut().zip(b.counters) {
                    *ca += cb;
                }
            }
        }
        Ok(())
    }

    /// Writes the wire representation (see `sas-codec` for the framing).
    pub(crate) fn write_wire(&self, w: &mut sas_codec::Writer) {
        let width = self.sketches[0][0].width as u64;
        w.section(1, |w| {
            w.put_u32(self.bits_x);
            w.put_u32(self.bits_y);
            w.put_u64(width);
            w.put_u8(ROWS as u8);
        });
        w.section(2, |w| {
            for rows in &self.sketches {
                for sk in rows {
                    for &seed in &sk.seeds {
                        w.put_u64(seed);
                    }
                    for &c in &sk.counters {
                        w.put_f64(c);
                    }
                }
            }
        });
    }

    /// Reads the wire representation, validating the geometry before any
    /// large allocation (never panics).
    pub(crate) fn read_wire(r: &mut sas_codec::Reader<'_>) -> Result<Self, sas_codec::CodecError> {
        use sas_codec::CodecError;
        let mut meta = r.expect_section(1)?;
        let bits_x = meta.get_u32()?;
        let bits_y = meta.get_u32()?;
        let width = meta.get_u64()? as usize;
        let rows = meta.get_u8()? as usize;
        meta.finish()?;
        if rows != ROWS {
            return Err(CodecError::Invalid(format!(
                "sketch has {rows} rows, this build expects {ROWS}"
            )));
        }
        if width == 0 {
            return Err(CodecError::Invalid("zero sketch width".into()));
        }
        if bits_x >= 32 || bits_y >= 32 {
            return Err(CodecError::Invalid(format!(
                "sketch domain bits ({bits_x}, {bits_y}) too large"
            )));
        }
        let mut body = r.expect_section(2)?;
        // One sketch is 3 seeds + ROWS·width counters; reject a corrupt
        // width before allocating anything near it. Every step is checked:
        // a crafted width must not wrap the arithmetic into a size that
        // matches the body (and then blow up in Vec::with_capacity).
        let pairs = ((bits_x + 1) * (bits_y + 1)) as usize;
        let overflow = || CodecError::Invalid(format!("sketch geometry {pairs}×{width} overflows"));
        let counters_per_sketch = ROWS.checked_mul(width).ok_or_else(overflow)?;
        let per_sketch = counters_per_sketch
            .checked_mul(8)
            .and_then(|v| v.checked_add(3 * 8))
            .ok_or_else(overflow)?;
        let needed = pairs.checked_mul(per_sketch).ok_or_else(overflow)?;
        if needed != body.remaining() {
            return Err(CodecError::LengthMismatch {
                declared: needed as u64,
                actual: body.remaining() as u64,
            });
        }
        let mut sketches = Vec::with_capacity((bits_x + 1) as usize);
        for _ in 0..=bits_x {
            let mut row = Vec::with_capacity((bits_y + 1) as usize);
            for _ in 0..=bits_y {
                let mut seeds = [0u64; ROWS];
                for s in &mut seeds {
                    *s = body.get_u64()?;
                }
                let mut counters = Vec::with_capacity(counters_per_sketch);
                for _ in 0..counters_per_sketch {
                    counters.push(body.get_finite_f64()?);
                }
                row.push(CountSketch {
                    width,
                    counters,
                    seeds,
                });
            }
            sketches.push(row);
        }
        body.finish()?;
        Ok(Self {
            sketches,
            bits_x,
            bits_y,
        })
    }

    /// Box estimate plus a variance proxy: the sum over the query's dyadic
    /// rectangles of the sample variance of the per-row estimates. The rows
    /// are independent unbiased estimators, so their spread is the sketch's
    /// own (heuristic) error signal — what the query API's Chebyshev-style
    /// interval is built from.
    pub fn estimate_box_stats(&self, query: &BoxRange) -> (f64, f64) {
        if query.is_empty() {
            return (0.0, 0.0);
        }
        // Clamp to the domain before dyadic decomposition.
        let max_x = if self.bits_x < 64 {
            (1u64 << self.bits_x) - 1
        } else {
            u64::MAX
        };
        let max_y = if self.bits_y < 64 {
            (1u64 << self.bits_y) - 1
        } else {
            u64::MAX
        };
        let xs = dyadic::decompose(
            query.sides[0].lo.min(max_x),
            query.sides[0].hi.min(max_x),
            self.bits_x,
        );
        let ys = dyadic::decompose(
            query.sides[1].lo.min(max_y),
            query.sides[1].hi.min(max_y),
            self.bits_y,
        );
        let mut sum = 0.0;
        let mut variance = 0.0;
        for dx in &xs {
            for dy in &ys {
                let sk = &self.sketches[dx.level as usize][dy.level as usize];
                let (median, var) = sk.estimate_stats(cell_id(dx.index, dy.index));
                sum += median;
                variance += var;
            }
        }
        (sum, variance)
    }
}

/// Count-sketches are linear: two sketches built with the same geometry
/// (domain bits, width, and hash seeds) merge by element-wise counter
/// addition, and the merged sketch is *identical* to one built over the
/// concatenated data.
///
/// # Panics
/// Panics if the two summaries' geometries differ (different domain bits,
/// counter width, or build seed) — merging those is not meaningful.
impl Mergeable for SketchSummary {
    fn merge_with<R: rand::Rng + ?Sized>(&mut self, other: Self, _rng: &mut R) {
        self.try_merge(other).unwrap();
    }
}

/// Packs 2-D cell coordinates into one hashable id.
fn cell_id(cx: u64, cy: u64) -> u64 {
    cx.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ cy
}

impl RangeSumSummary for SketchSummary {
    fn estimate_box(&self, query: &BoxRange) -> f64 {
        self.estimate_box_stats(query).0
    }

    fn size_elements(&self) -> usize {
        self.sketches
            .iter()
            .flatten()
            .map(|s| s.counters.len())
            .sum()
    }

    fn name(&self) -> &'static str {
        "sketch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, bits: u32, seed: u64) -> SpatialData {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 1u64 << bits;
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..side),
                    rng.gen_range(0..side),
                    rng.gen_range(0.5..5.0),
                )
            })
            .collect();
        SpatialData::from_xyw(&rows)
    }

    #[test]
    fn single_sketch_point_estimates() {
        let mut sk = CountSketch::new(64, 42);
        for i in 0..10u64 {
            sk.update(i, (i + 1) as f64);
        }
        // With 10 items in 64 buckets, collisions are unlikely per row and
        // the median kills outliers.
        for i in 0..10u64 {
            let (est, _) = sk.estimate_stats(i);
            assert!((est - (i + 1) as f64).abs() < 6.0, "item {i}: est {est}");
        }
    }

    #[test]
    fn huge_budget_is_accurate() {
        let data = random_data(100, 4, 1);
        let sk = SketchSummary::build(&data, 4, 4, 200_000, 7);
        let exact = crate::exact::ExactEngine::new(&data);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let x0 = rng.gen_range(0..16);
            let x1 = rng.gen_range(x0..16);
            let y0 = rng.gen_range(0..16);
            let y1 = rng.gen_range(y0..16);
            let q = BoxRange::xy(x0, x1, y0, y1);
            let est = sk.estimate_box(&q);
            let truth = exact.box_sum(&q);
            assert!(
                (est - truth).abs() < 0.15 * data.total_weight(),
                "{q:?}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn small_budget_is_much_worse_than_samples() {
        // Reproduces the paper's observation: at small sizes the 2-D sketch
        // error is enormous relative to other summaries.
        let data = random_data(2000, 8, 3);
        let sk = SketchSummary::build(&data, 8, 8, 500, 11);
        let exact = crate::exact::ExactEngine::new(&data);
        let q = BoxRange::xy(10, 100, 10, 100);
        let err = (sk.estimate_box(&q) - exact.box_sum(&q)).abs();
        // No correctness claim — just that the error is a macroscopic
        // fraction of the total, unlike samples at the same size.
        assert!(err > 1e-3 * data.total_weight(), "err {err}");
    }

    #[test]
    fn size_accounting() {
        let data = random_data(50, 4, 4);
        let sk = SketchSummary::build(&data, 4, 4, 3000, 5);
        // 25 level pairs × ROWS rows × width.
        assert!(sk.size_elements() <= 3000 + 25 * ROWS);
        assert!(sk.size_elements() > 0);
    }

    #[test]
    fn full_domain_estimate_reasonable() {
        let data = random_data(300, 6, 6);
        let sk = SketchSummary::build(&data, 6, 6, 50_000, 8);
        let full = BoxRange::xy(0, 63, 0, 63);
        let est = sk.estimate_box(&full);
        let truth = data.total_weight();
        // Full domain is a single dyadic rectangle at the top level pair.
        assert!((est - truth).abs() < 0.05 * truth, "{est} vs {truth}");
    }

    #[test]
    fn merged_sketch_identical_to_sketch_of_union() {
        // Linearity: build(A) ⊕ build(B) == build(A ∪ B), counter for
        // counter, when the geometry and seed agree.
        let mut rng = StdRng::seed_from_u64(13);
        let all = random_data(400, 6, 9);
        let rows: Vec<(u64, u64, f64)> = all
            .keys
            .iter()
            .zip(&all.points)
            .map(|(wk, p)| (p.coord(0), p.coord(1), wk.weight))
            .collect();
        let (first, second) = rows.split_at(250);
        let mut a = SketchSummary::build(&SpatialData::from_xyw(first), 6, 6, 4000, 21);
        let b = SketchSummary::build(&SpatialData::from_xyw(second), 6, 6, 4000, 21);
        let whole = SketchSummary::build(&all, 6, 6, 4000, 21);
        a.merge_with(b, &mut rng);
        for (rows_m, rows_w) in a.sketches.iter().zip(&whole.sketches) {
            for (m, w) in rows_m.iter().zip(rows_w) {
                for (cm, cw) in m.counters.iter().zip(&w.counters) {
                    assert!((cm - cw).abs() < 1e-9, "counter {cm} vs {cw}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merging_mismatched_seeds_panics() {
        let mut rng = StdRng::seed_from_u64(14);
        let data = random_data(20, 4, 10);
        let mut a = SketchSummary::build(&data, 4, 4, 500, 1);
        let b = SketchSummary::build(&data, 4, 4, 500, 2);
        a.merge_with(b, &mut rng);
    }

    #[test]
    fn row_stats_agree_with_the_median_estimate() {
        let data = random_data(300, 5, 21);
        let sk = SketchSummary::build(&data, 5, 5, 1500, 4);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..50 {
            let x0 = rng.gen_range(0..32);
            let x1 = rng.gen_range(x0..32);
            let y0 = rng.gen_range(0..32);
            let y1 = rng.gen_range(y0..32);
            let q = BoxRange::xy(x0, x1, y0, y1);
            let (value, variance) = sk.estimate_box_stats(&q);
            // The stats value IS the estimate (same accumulation).
            assert_eq!(value.to_bits(), sk.estimate_box(&q).to_bits());
            assert!(variance >= 0.0, "{q:?}: variance {variance}");
        }
        // Empty query: zero value, zero spread.
        assert_eq!(
            sk.estimate_box_stats(&BoxRange::xy(9, 3, 0, 31)),
            (0.0, 0.0)
        );
        // A colossal sketch (noise-free): rows agree, so the spread
        // collapses while the value tracks the truth.
        let huge = SketchSummary::build(&data, 5, 5, 200_000, 4);
        let full = BoxRange::xy(0, 31, 0, 31);
        let (value, variance) = huge.estimate_box_stats(&full);
        assert!((value - data.total_weight()).abs() < 1e-6);
        assert!(
            variance < 1e-9,
            "noise-free sketch still spread: {variance}"
        );
    }
}
