//! One-dimensional Haar wavelet summary — the classic setting where wavelet
//! summaries shine ("arrays of counts", per the paper's related work).
//!
//! Same construction as the 2-D variant but over a single axis; retained
//! for the 1-D comparison experiments and as the building block the 2-D
//! tensor transform is validated against.

use std::collections::HashMap;

use sas_core::WeightedKey;
use sas_structures::order::Interval;

/// A 1-D Haar basis function index: level 0 is a special marker for the
/// scaling function; level ≥ 1 is the wavelet at that level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum B1 {
    Scaling,
    Wavelet { level: u32, k: u64 },
}

impl B1 {
    fn value(self, x: u64, bits: u32) -> f64 {
        match self {
            B1::Scaling => 2.0_f64.powf(-(bits as f64) / 2.0),
            B1::Wavelet { level, k } => {
                if (x >> level) != k {
                    return 0.0;
                }
                let sign = if ((x >> (level - 1)) & 1) == 0 {
                    1.0
                } else {
                    -1.0
                };
                sign * 2.0_f64.powf(-(level as f64) / 2.0)
            }
        }
    }

    fn range_sum(self, a: u64, b: u64, bits: u32) -> f64 {
        if a > b {
            return 0.0;
        }
        match self {
            B1::Scaling => (b - a + 1) as f64 * 2.0_f64.powf(-(bits as f64) / 2.0),
            B1::Wavelet { level, k } => {
                let lo = k << level;
                let half = 1u64 << (level - 1);
                let mid = lo + half;
                let hi = lo + (1u64 << level) - 1;
                let ov = |l: u64, h: u64| -> u64 {
                    let x = a.max(l);
                    let y = b.min(h);
                    if x > y {
                        0
                    } else {
                        y - x + 1
                    }
                };
                (ov(lo, mid - 1) as f64 - ov(mid, hi) as f64) * 2.0_f64.powf(-(level as f64) / 2.0)
            }
        }
    }

    fn scale(self, bits: u32) -> f64 {
        match self {
            B1::Scaling => 2.0_f64.powf(bits as f64 / 2.0),
            B1::Wavelet { level, .. } => 2.0_f64.powf(level as f64 / 2.0),
        }
    }
}

/// Thresholded 1-D Haar wavelet summary over keys interpreted as positions
/// in `[0, 2^bits)`.
#[derive(Debug, Clone)]
pub struct Wavelet1D {
    coeffs: Vec<(B1, f64)>,
    bits: u32,
}

impl Wavelet1D {
    /// Builds the transform and keeps the `s` coefficients with the largest
    /// range-sum impact (|c|·2^(level/2)).
    pub fn build(data: &[WeightedKey], bits: u32, s: usize) -> Self {
        let mut acc: HashMap<B1, f64> = HashMap::new();
        for wk in data {
            if wk.weight == 0.0 {
                continue;
            }
            let x = wk.key;
            if bits < 64 {
                assert!(x < (1u64 << bits), "key {x} outside 2^{bits} domain");
            }
            *acc.entry(B1::Scaling).or_insert(0.0) += wk.weight * B1::Scaling.value(x, bits);
            for level in 1..=bits {
                let b = B1::Wavelet {
                    level,
                    k: x >> level,
                };
                *acc.entry(b).or_insert(0.0) += wk.weight * b.value(x, bits);
            }
        }
        let mut coeffs: Vec<(B1, f64)> = acc.into_iter().collect();
        coeffs.sort_by(|(ba, ca), (bb, cb)| {
            (cb.abs() * bb.scale(bits)).total_cmp(&(ca.abs() * ba.scale(bits)))
        });
        coeffs.truncate(s);
        Self { coeffs, bits }
    }

    /// Number of retained coefficients.
    pub fn size_elements(&self) -> usize {
        self.coeffs.len()
    }

    /// Estimated weight of keys in the interval.
    pub fn estimate(&self, iv: Interval) -> f64 {
        if iv.is_empty() {
            return 0.0;
        }
        let max = if self.bits < 64 {
            (1u64 << self.bits) - 1
        } else {
            u64::MAX
        };
        let (a, b) = (iv.lo.min(max), iv.hi.min(max));
        self.coeffs
            .iter()
            .map(|(basis, c)| c * basis.range_sum(a, b, self.bits))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: u64, bits: u32, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 1u64 << bits;
        (0..n)
            .map(|_| WeightedKey::new(rng.gen_range(0..side), rng.gen_range(0.1..5.0)))
            .collect()
    }

    fn exact(data: &[WeightedKey], iv: Interval) -> f64 {
        data.iter()
            .filter(|wk| iv.contains(wk.key))
            .map(|wk| wk.weight)
            .sum()
    }

    #[test]
    fn full_transform_exact() {
        let data = random_data(50, 6, 1);
        let w = Wavelet1D::build(&data, 6, usize::MAX);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = rng.gen_range(0..64);
            let b = rng.gen_range(a..64);
            let iv = Interval::new(a, b);
            let est = w.estimate(iv);
            let truth = exact(&data, iv);
            assert!((est - truth).abs() < 1e-6 * (1.0 + truth), "{iv:?}");
        }
    }

    #[test]
    fn truncation_respects_budget() {
        let data = random_data(500, 10, 3);
        let w = Wavelet1D::build(&data, 10, 40);
        assert!(w.size_elements() <= 40);
        // Coarse query remains decent under truncation.
        let iv = Interval::new(0, 1023);
        let truth = exact(&data, iv);
        assert!((w.estimate(iv) - truth).abs() < 0.05 * truth);
    }

    #[test]
    fn one_dim_wavelet_is_accurate_on_smooth_data() {
        // The paper's point: in 1-D with smooth-ish mass, wavelets are
        // strong. Smooth data = near-uniform weights over the domain.
        let bits = 10;
        let data: Vec<WeightedKey> = (0..1024u64)
            .map(|k| WeightedKey::new(k, 1.0 + 0.1 * ((k as f64) / 100.0).sin()))
            .collect();
        let w = Wavelet1D::build(&data, bits, 64);
        let mut rng = StdRng::seed_from_u64(4);
        let total: f64 = data.iter().map(|wk| wk.weight).sum();
        for _ in 0..40 {
            let a = rng.gen_range(0..1024);
            let b = rng.gen_range(a..1024);
            let iv = Interval::new(a, b);
            let err = (w.estimate(iv) - exact(&data, iv)).abs();
            assert!(err < 0.01 * total, "err {err} on {iv:?}");
        }
    }
}
