//! The classic one-dimensional q-digest [Shrivastava, Buragohain, Agrawal,
//! Suri — SenSys 2004], for the 1-D comparison experiments and rank /
//! quantile queries.
//!
//! Nodes are dyadic intervals; a node is materialized only if its subtree
//! weight cannot be pushed into its parent without the parent's count
//! exceeding `W/k`. The structure guarantees rank error ≤ (log u)·W/k and
//! materializes O(k log u) nodes.

use std::collections::HashMap;

use sas_core::WeightedKey;
use sas_structures::dyadic::DyadicInterval;
use sas_structures::order::Interval;

/// The classic 1-D q-digest.
#[derive(Debug, Clone)]
pub struct QDigest1D {
    nodes: Vec<(DyadicInterval, f64)>,
    bits: u32,
    total: f64,
}

impl QDigest1D {
    /// Builds a q-digest over keys in `[0, 2^bits)` with compression budget
    /// `k` (threshold `W/k`).
    pub fn build(data: &[WeightedKey], bits: u32, k: usize) -> Self {
        assert!(k > 0, "budget must be positive");
        let mut leaves: HashMap<u64, f64> = HashMap::new();
        let mut total = 0.0;
        for wk in data {
            if wk.weight == 0.0 {
                continue;
            }
            if bits < 64 {
                assert!(wk.key < (1u64 << bits), "key outside domain");
            }
            *leaves.entry(wk.key).or_insert(0.0) += wk.weight;
            total += wk.weight;
        }
        if leaves.is_empty() {
            return Self {
                nodes: Vec::new(),
                bits,
                total: 0.0,
            };
        }
        let mut threshold = total / k as f64;
        loop {
            let nodes = Self::compress(&leaves, bits, threshold);
            if nodes.len() <= k {
                return Self { nodes, bits, total };
            }
            threshold *= 2.0;
        }
    }

    fn compress(
        leaves: &HashMap<u64, f64>,
        bits: u32,
        threshold: f64,
    ) -> Vec<(DyadicInterval, f64)> {
        let mut materialized = Vec::new();
        let mut current: HashMap<DyadicInterval, f64> = leaves
            .iter()
            .map(|(&x, &w)| (DyadicInterval { level: 0, index: x }, w))
            .collect();
        for _ in 0..bits {
            let mut by_parent: HashMap<DyadicInterval, (f64, Vec<(DyadicInterval, f64)>)> =
                HashMap::new();
            for (d, w) in current.drain() {
                let e = by_parent.entry(d.parent()).or_insert((0.0, Vec::new()));
                e.0 += w;
                e.1.push((d, w));
            }
            for (parent, (group_w, members)) in by_parent {
                if group_w < threshold {
                    current.insert(parent, group_w);
                } else {
                    for (d, w) in members {
                        if w >= threshold / 2.0 {
                            materialized.push((d, w));
                        } else {
                            *current.entry(parent).or_insert(0.0) += w;
                        }
                    }
                }
            }
        }
        materialized.extend(current.into_iter().filter(|(_, w)| *w > 0.0));
        materialized
    }

    /// Number of materialized nodes.
    pub fn size_elements(&self) -> usize {
        self.nodes.len()
    }

    /// Total stored weight.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Estimated weight of keys in the interval (partially overlapped nodes
    /// contribute proportionally).
    pub fn estimate(&self, iv: Interval) -> f64 {
        if iv.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|(d, w)| {
                let node_iv = Interval::new(d.lo(), d.hi());
                let inter = iv.intersect(&node_iv);
                if inter.is_empty() {
                    0.0
                } else {
                    w * inter.len() as f64 / node_iv.len() as f64
                }
            })
            .sum()
    }

    /// Estimated rank of `x`: the weight of keys ≤ x.
    pub fn rank(&self, x: u64) -> f64 {
        self.estimate(Interval::prefix(x))
    }

    /// Approximate `q`-quantile: the smallest position whose estimated rank
    /// reaches `q · W`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]");
        let target = q * self.total;
        let max = if self.bits < 64 {
            (1u64 << self.bits) - 1
        } else {
            u64::MAX
        };
        let (mut lo, mut hi) = (0u64, max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.rank(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: u64, bits: u32, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 1u64 << bits;
        (0..n)
            .map(|_| WeightedKey::new(rng.gen_range(0..side), rng.gen_range(0.1..5.0)))
            .collect()
    }

    #[test]
    fn weight_conserved() {
        let data = random_data(500, 10, 1);
        let q = QDigest1D::build(&data, 10, 50);
        let stored: f64 = q.nodes.iter().map(|(_, w)| w).sum();
        let total: f64 = data.iter().map(|wk| wk.weight).sum();
        assert!((stored - total).abs() < 1e-6);
        assert!(q.size_elements() <= 50);
    }

    #[test]
    fn rank_error_bounded() {
        // Rank error ≤ ~log(u)·W/k for the classic q-digest.
        let data = random_data(2000, 12, 2);
        let k = 100;
        let q = QDigest1D::build(&data, 12, k);
        let total = q.total();
        let bound = 12.0 * total / k as f64;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let x = rng.gen_range(0..(1u64 << 12));
            let truth: f64 = data
                .iter()
                .filter(|wk| wk.key <= x)
                .map(|wk| wk.weight)
                .sum();
            let err = (q.rank(x) - truth).abs();
            assert!(err <= bound, "rank({x}): err {err} > bound {bound}");
        }
    }

    #[test]
    fn quantiles_monotone() {
        let data = random_data(1000, 10, 4);
        let q = QDigest1D::build(&data, 10, 64);
        let mut last = 0;
        for i in 1..10 {
            let v = q.quantile(i as f64 / 10.0);
            assert!(v >= last, "quantiles not monotone");
            last = v;
        }
    }

    #[test]
    fn median_near_true_median() {
        let data: Vec<WeightedKey> = (0..1024u64).map(|k| WeightedKey::new(k, 1.0)).collect();
        let q = QDigest1D::build(&data, 10, 128);
        let med = q.quantile(0.5);
        assert!(
            (med as i64 - 512).unsigned_abs() < 64,
            "median {med} far from 512"
        );
    }

    #[test]
    fn empty_digest() {
        let q = QDigest1D::build(&[], 8, 10);
        assert_eq!(q.size_elements(), 0);
        assert_eq!(q.estimate(Interval::new(0, 255)), 0.0);
    }
}
