//! The erased [`Summary`] trait and the [`SummaryKind`] registry: every
//! summary in this workspace — VarOpt reservoir state, finished samples,
//! q-digest, wavelet, count-sketch — behind one object-safe interface with
//! a versioned binary persistence format.
//!
//! This is what lets a summary outlive the process that built it: `sas
//! summarize --out part.sas` writes a frame (see `sas-codec` for the
//! layout), `sas merge` combines frames from different processes through
//! [`Summary::merge_in_place`], and `sas query` answers range sums from a
//! frame alone — all without a single per-kind `match` in the caller.
//!
//! ## Adding a kind
//!
//! 1. give the type `write_wire`/`read_wire` methods in its own module;
//! 2. implement [`Summary`] for it here;
//! 3. append a [`KindEntry`] to [`REGISTRY`] with a **fresh tag** (tags are
//!    part of the wire format and must never be reused or renumbered).

use std::any::Any;
use std::fmt;

use rand::RngCore;

use sas_codec::{encode_frame, open_frame, CodecError, Reader, Writer};
use sas_core::varopt::VarOptSampler;
use sas_core::KeyId;
use sas_sampling::sharded::MergeArena;
use sas_structures::product::BoxRange;

use crate::countsketch::SketchSummary;
use crate::qdigest::QDigestSummary;
use crate::query::{Estimate, Query, QueryError, SampleAccumulator};
use crate::stored::StoredSample;
use crate::wavelet::WaveletSummary;
use crate::RangeSumSummary;

/// The registered summary kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SummaryKind {
    /// A finished sample with HT adjusted weights ([`StoredSample`]).
    Sample,
    /// Live VarOpt reservoir state ([`VarOptSampler`]) — resumable.
    VarOptReservoir,
    /// 2-D q-digest ([`QDigestSummary`]).
    QDigest,
    /// 2-D thresholded Haar wavelet ([`WaveletSummary`]).
    Wavelet,
    /// Dyadic count-sketch ([`SketchSummary`]).
    CountSketch,
}

impl SummaryKind {
    /// The kind's wire tag (stable; part of the format).
    pub fn tag(self) -> u16 {
        self.entry().tag
    }

    /// Short stable name (`sample`, `varopt`, `qdigest`, `wavelet`,
    /// `sketch`) — accepted by `sas summarize --kind`.
    pub fn name(self) -> &'static str {
        self.entry().name
    }

    /// Looks a kind up by wire tag.
    pub fn from_tag(tag: u16) -> Option<Self> {
        REGISTRY.iter().find(|e| e.tag == tag).map(|e| e.kind)
    }

    /// Looks a kind up by name.
    pub fn from_name(name: &str) -> Option<Self> {
        REGISTRY.iter().find(|e| e.name == name).map(|e| e.kind)
    }

    /// All registered kinds.
    pub fn all() -> impl Iterator<Item = Self> {
        REGISTRY.iter().map(|e| e.kind)
    }

    fn entry(self) -> &'static KindEntry {
        REGISTRY
            .iter()
            .find(|e| e.kind == self)
            .expect("every kind is registered")
    }
}

impl fmt::Display for SummaryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from the erased summary layer.
#[derive(Debug)]
pub enum SummaryError {
    /// Decoding failed (corruption, truncation, version/kind mismatch).
    Codec(CodecError),
    /// A merge was rejected (kind, dimensionality, or geometry mismatch).
    Merge(String),
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::Codec(e) => write!(f, "{e}"),
            SummaryError::Merge(msg) => write!(f, "merge rejected: {msg}"),
        }
    }
}

impl std::error::Error for SummaryError {}

impl From<CodecError> for SummaryError {
    fn from(e: CodecError) -> Self {
        SummaryError::Codec(e)
    }
}

/// An object-safe, persistable, mergeable summary.
///
/// Implementations answer range-sum queries, expose their build metadata
/// (kind, dimensionality, size, threshold), merge type-erased peers, and
/// encode themselves onto the `sas-codec` wire format. Everything a caller
/// needs lives behind `Box<dyn Summary>` — no downcasting outside this
/// module.
///
/// `Send + Sync` is part of the contract: summaries are plain data, and
/// the store serves them from shared snapshots across threads.
pub trait Summary: fmt::Debug + Send + Sync {
    /// Which registered kind this is.
    fn kind(&self) -> SummaryKind;

    /// Dimensionality of the key domain the summary answers queries over.
    fn dims(&self) -> usize;

    /// Stored elements (keys / nodes / coefficients / counters) — the
    /// paper's space axis.
    fn item_count(&self) -> usize;

    /// Estimate of the total data weight.
    fn total_estimate(&self) -> f64;

    /// The IPPS threshold, for sample-based kinds.
    fn tau(&self) -> Option<f64> {
        None
    }

    /// Answers a [`Query`] with an [`Estimate`] — a value *with an error
    /// bar*. This is the one query entry point: per kind,
    ///
    /// * stored samples / VarOpt reservoirs bound the light-key mass by
    ///   inverting the paper's Eqn. (4) tail
    ///   ([`sas_core::bounds::weight_confidence_interval`]) and report an
    ///   HT variance estimate; `confidence` must lie in `(0, 1)` whenever
    ///   a probabilistic bound is actually needed;
    /// * q-digests report deterministic containment bounds, wavelets a
    ///   deterministic truncation bound — both at `confidence = 1`,
    ///   whatever was requested;
    /// * count-sketches report a Chebyshev-style interval from the spread
    ///   of their per-row estimates.
    fn answer(&self, query: &Query, confidence: f64) -> Result<Estimate, QueryError>;

    /// Answers a batch of queries, one estimate per query in order.
    ///
    /// Sample-based kinds override this to walk their items **once**,
    /// testing each item against every query, instead of once per query —
    /// the batched form the store daemon and `sas query --queries` use.
    fn answer_batch(
        &self,
        queries: &[Query],
        confidence: f64,
    ) -> Result<Vec<Estimate>, QueryError> {
        queries.iter().map(|q| self.answer(q, confidence)).collect()
    }

    /// Estimated weight inside an axis-aligned range: `range[i]` is the
    /// closed interval on axis `i`; missing axes default to the full
    /// domain.
    ///
    /// **Deprecated shim** — this is [`Summary::answer`] with a box query,
    /// discarding the error bounds. It is a provided method (extra axes
    /// ignored as they historically were) and deliberately has **no
    /// per-kind overrides**: [`Summary::answer`] is the single source of
    /// truth for query values, so the shim cannot drift from it. Pre-PR-5
    /// callers and the old `REQ_QUERY` wire tag keep receiving
    /// bit-identical values; new code should call [`Summary::answer`].
    fn range_sum(&self, range: &[(u64, u64)]) -> f64 {
        let range = &range[..range.len().min(self.dims())];
        self.answer(&Query::BoxRange(range.to_vec()), 0.95)
            .map(|e| e.value)
            .unwrap_or(0.0)
    }

    /// Merges a type-erased summary of *disjoint* data into `self`.
    ///
    /// `budget` bounds the merged size where the kind supports it (finished
    /// samples re-subsample down to it; reservoirs already carry their
    /// capacity; deterministic summaries merge by addition and ignore it).
    /// Randomized merges draw from `rng`; deterministic ones ignore it.
    /// Fails — without mutating `self` — on kind, dimensionality, or
    /// geometry mismatch.
    fn merge_in_place(
        &mut self,
        other: Box<dyn Summary>,
        budget: Option<usize>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SummaryError>;

    /// [`Summary::merge_in_place`] with caller-provided scratch buffers —
    /// bit-identical to it for any arena state. Kinds whose merge allocates
    /// per call (budgeted samples) override this to recycle the arena's
    /// buffers; the default ignores the arena. [`merge_tree_with`] threads
    /// one arena through every merge of a tree.
    fn merge_in_place_with(
        &mut self,
        other: Box<dyn Summary>,
        budget: Option<usize>,
        rng: &mut dyn RngCore,
        _arena: &mut MergeArena,
    ) -> Result<(), SummaryError> {
        self.merge_in_place(other, budget, rng)
    }

    /// Writes the kind-specific frame body (sections only; the envelope is
    /// added by [`encode_summary`]).
    fn encode_body(&self, w: &mut Writer);

    /// Deep copy behind the erased interface — what lets a concurrent
    /// catalog hand out immutable snapshots while a writer merges into a
    /// private copy (`Box<dyn Summary>` implements [`Clone`] through this).
    fn clone_box(&self) -> Box<dyn Summary>;

    /// Upcast for inspection.
    fn as_any(&self) -> &dyn Any;

    /// Upcast for consuming downcasts (used by merge implementations).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl Clone for Box<dyn Summary> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One registry row: the kind, its stable wire tag and name, and the
/// decoder producing the erased summary from a frame body.
pub struct KindEntry {
    /// The kind.
    pub kind: SummaryKind,
    /// Stable wire tag.
    pub tag: u16,
    /// Stable CLI name.
    pub name: &'static str,
    /// Body decoder.
    pub decode: for<'a> fn(&mut Reader<'a>) -> Result<Box<dyn Summary>, CodecError>,
}

/// The kind registry: the single place associating tags, names, and
/// decoders. Order is cosmetic; tags are forever.
pub static REGISTRY: &[KindEntry] = &[
    KindEntry {
        kind: SummaryKind::Sample,
        tag: 1,
        name: "sample",
        decode: |r| Ok(Box::new(StoredSample::read_wire(r)?)),
    },
    KindEntry {
        kind: SummaryKind::VarOptReservoir,
        tag: 2,
        name: "varopt",
        decode: |r| Ok(Box::new(decode_varopt(r)?)),
    },
    KindEntry {
        kind: SummaryKind::QDigest,
        tag: 3,
        name: "qdigest",
        decode: |r| Ok(Box::new(QDigestSummary::read_wire(r)?)),
    },
    KindEntry {
        kind: SummaryKind::Wavelet,
        tag: 4,
        name: "wavelet",
        decode: |r| Ok(Box::new(WaveletSummary::read_wire(r)?)),
    },
    KindEntry {
        kind: SummaryKind::CountSketch,
        tag: 5,
        name: "sketch",
        decode: |r| Ok(Box::new(SketchSummary::read_wire(r)?)),
    },
];

/// Encodes any summary into a self-describing binary frame.
pub fn encode_summary(s: &dyn Summary) -> Vec<u8> {
    encode_frame(s.kind().tag(), |w| s.encode_body(w))
}

/// Decodes a binary frame into the summary it holds, dispatching through
/// the registry. Never panics on corrupted input.
pub fn decode_summary(bytes: &[u8]) -> Result<Box<dyn Summary>, CodecError> {
    let mut frame = open_frame(bytes)?;
    let entry = REGISTRY
        .iter()
        .find(|e| e.tag == frame.kind)
        .ok_or(CodecError::UnknownKind(frame.kind))?;
    let summary = (entry.decode)(&mut frame.body)?;
    frame.body.finish()?;
    Ok(summary)
}

/// Batch-decodes a set of frames in order, stopping at the first corrupt
/// one. This is the shape store recovery and the merge-from-disk benches
/// want: decode everything up front, then merge the decoded summaries as
/// one [`merge_tree_with`] pass instead of interleaving decode and merge.
pub fn decode_summaries<B: AsRef<[u8]>>(frames: &[B]) -> Result<Vec<Box<dyn Summary>>, CodecError> {
    frames.iter().map(|b| decode_summary(b.as_ref())).collect()
}

/// Merges summaries of *disjoint* data bottom-up in a binary tree:
/// adjacent pairs merge level by level, so `N` inputs pay `O(log₂ N)`
/// merge levels (for budgeted samples each level adds less than 2 to any
/// interval's discrepancy — a left-to-right fold would pay one level per
/// input). This is the single merge order shared by `sas merge`, sharded
/// summarization, and the store's window compaction: given the same
/// inputs, budget, and RNG stream, the result is bit-identical wherever
/// it runs.
pub fn merge_tree(
    summaries: Vec<Box<dyn Summary>>,
    budget: Option<usize>,
    rng: &mut dyn RngCore,
) -> Result<Box<dyn Summary>, SummaryError> {
    merge_tree_with(summaries, budget, rng, &mut MergeArena::new())
}

/// [`merge_tree`] with caller-provided scratch buffers — bit-identical to
/// it for any arena state. One [`MergeArena`] is threaded through all
/// `N - 1` merges, so the tree pays the merge scratch allocations once
/// instead of once per merge; a compaction loop can likewise carry a
/// single arena across many trees.
pub fn merge_tree_with(
    summaries: Vec<Box<dyn Summary>>,
    budget: Option<usize>,
    rng: &mut dyn RngCore,
    arena: &mut MergeArena,
) -> Result<Box<dyn Summary>, SummaryError> {
    if summaries.is_empty() {
        return Err(SummaryError::Merge("nothing to merge".into()));
    }
    let mut level = summaries;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge_in_place_with(b, budget, rng, arena)?;
            }
            next.push(a);
        }
        level = next;
    }
    Ok(level.pop().expect("non-empty input"))
}

/// Consuming downcast with a kind-aware error.
fn downcast<T: Any>(other: Box<dyn Summary>, into: SummaryKind) -> Result<Box<T>, SummaryError> {
    let found = other.kind();
    other.into_any().downcast::<T>().map_err(|_| {
        SummaryError::Merge(format!(
            "cannot merge a {found} summary into a {into} summary"
        ))
    })
}

/// One answer through the (overridden) batch path.
pub(crate) fn answer_one(
    s: &(impl Summary + ?Sized),
    query: &Query,
    confidence: f64,
) -> Result<Estimate, QueryError> {
    Ok(s.answer_batch(std::slice::from_ref(query), confidence)?
        .pop()
        .expect("one estimate per query"))
}

pub(crate) fn in_interval((lo, hi): (u64, u64), v: u64) -> bool {
    (lo..=hi).contains(&v)
}

/// The deterministic kinds' shared answer shape: per-box values and bounds
/// add over a disjoint union.
fn deterministic_estimate(value: f64, lower: f64, upper: f64) -> Estimate {
    Estimate {
        value,
        variance: 0.0,
        // Float dust between the value and bound accumulations must never
        // push the value outside its own interval.
        lower: lower.min(value),
        upper: upper.max(value),
        confidence: 1.0,
    }
}

// --- Sample ----------------------------------------------------------------

impl Summary for StoredSample {
    fn kind(&self) -> SummaryKind {
        SummaryKind::Sample
    }

    fn dims(&self) -> usize {
        StoredSample::dims(self)
    }

    fn item_count(&self) -> usize {
        self.len()
    }

    fn total_estimate(&self) -> f64 {
        StoredSample::total_estimate(self)
    }

    fn tau(&self) -> Option<f64> {
        Some(StoredSample::tau(self))
    }

    fn answer(&self, query: &Query, confidence: f64) -> Result<Estimate, QueryError> {
        answer_one(self, query, confidence)
    }

    fn answer_batch(
        &self,
        queries: &[Query],
        confidence: f64,
    ) -> Result<Vec<Estimate>, QueryError> {
        let tau = StoredSample::tau(self);
        let compiled: Vec<Vec<Vec<(u64, u64)>>> = queries
            .iter()
            .map(|q| q.boxes(StoredSample::dims(self)))
            .collect::<Result<_, _>>()?;
        // One pass over the item columns. Single-box queries (every query
        // shape except MultiRange) have their bounds flattened into
        // parallel per-axis columns, so the hot loop tests each item's key
        // or coordinates against plain bound arrays — contiguous loads, no
        // nested-Vec indirection, no per-entry map lookup; the multi-box
        // stragglers ride the same item pass with the usual any-box test.
        let two_dim = StoredSample::dims(self) == 2;
        let (keys, weights, adjusted) = (self.keys(), self.weights(), self.adjusted_weights());
        let (xs, ys) = (self.xs(), self.ys());
        let mut accs = vec![SampleAccumulator::default(); queries.len()];
        let mut qidx: Vec<usize> = Vec::with_capacity(queries.len());
        let mut b0: Vec<(u64, u64)> = Vec::with_capacity(queries.len());
        let mut b1: Vec<(u64, u64)> = Vec::with_capacity(queries.len());
        // Multi-box queries, as (query index, compiled boxes) pairs.
        type MultiBox<'a> = (usize, &'a [Vec<(u64, u64)>]);
        let mut multi: Vec<MultiBox<'_>> = Vec::new();
        for (qi, boxes) in compiled.iter().enumerate() {
            if let [axes] = boxes.as_slice() {
                qidx.push(qi);
                b0.push(axes[0]);
                if two_dim {
                    b1.push(axes[1]);
                }
            } else {
                multi.push((qi, boxes.as_slice()));
            }
        }
        // The light/heavy split and the light item's variance term depend
        // only on the item, not the query, so both are hoisted out of the
        // per-query loop (unswitching a branch the compiler can't). Each
        // accumulator still folds hits in item order, so every answer is
        // bit-identical to the one-query-at-a-time path.
        let mut flat = vec![SampleAccumulator::default(); qidx.len()];
        if two_dim {
            for (((&x, &y), &w), &a) in xs.iter().zip(ys).zip(weights).zip(adjusted) {
                let light = tau > 0.0 && w < tau;
                let light_var = if light { tau * (tau - w) } else { 0.0 };
                for ((acc, &(x0, x1)), &(y0, y1)) in flat.iter_mut().zip(&b0).zip(&b1) {
                    if x0 <= x && x <= x1 && y0 <= y && y <= y1 {
                        acc.add_classified(a, tau, light, light_var);
                    }
                }
                for &(qi, boxes) in &multi {
                    if boxes
                        .iter()
                        .any(|axes| in_interval(axes[0], x) && in_interval(axes[1], y))
                    {
                        accs[qi].add_classified(a, tau, light, light_var);
                    }
                }
            }
        } else {
            for ((&k, &w), &a) in keys.iter().zip(weights).zip(adjusted) {
                let light = tau > 0.0 && w < tau;
                let light_var = if light { tau * (tau - w) } else { 0.0 };
                for (acc, &(lo, hi)) in flat.iter_mut().zip(&b0) {
                    if lo <= k && k <= hi {
                        acc.add_classified(a, tau, light, light_var);
                    }
                }
                for &(qi, boxes) in &multi {
                    if boxes.iter().any(|axes| in_interval(axes[0], k)) {
                        accs[qi].add_classified(a, tau, light, light_var);
                    }
                }
            }
        }
        for (&qi, acc) in qidx.iter().zip(flat) {
            accs[qi] = acc;
        }
        accs.into_iter()
            .map(|a| a.finish(tau, confidence))
            .collect()
    }

    fn merge_in_place(
        &mut self,
        other: Box<dyn Summary>,
        budget: Option<usize>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SummaryError> {
        let other = downcast::<StoredSample>(other, SummaryKind::Sample)?;
        self.merge(*other, budget, rng).map_err(SummaryError::Merge)
    }

    fn merge_in_place_with(
        &mut self,
        other: Box<dyn Summary>,
        budget: Option<usize>,
        rng: &mut dyn RngCore,
        arena: &mut MergeArena,
    ) -> Result<(), SummaryError> {
        let other = downcast::<StoredSample>(other, SummaryKind::Sample)?;
        self.merge_with(*other, budget, rng, arena)
            .map_err(SummaryError::Merge)
    }

    fn encode_body(&self, w: &mut Writer) {
        self.write_wire(w);
    }

    fn clone_box(&self) -> Box<dyn Summary> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// --- VarOpt reservoir ------------------------------------------------------

fn decode_varopt(r: &mut Reader<'_>) -> Result<VarOptSampler, CodecError> {
    let mut meta = r.expect_section(1)?;
    let s = meta.get_u64()? as usize;
    let tau = meta.get_f64()?;
    let count = meta.get_u64()? as usize;
    let total_weight = meta.get_f64()?;
    meta.finish()?;
    let mut large_sec = r.expect_section(2)?;
    let n_large = large_sec.get_len(16)?; // u64 + f64 per entry
    let mut large = Vec::with_capacity(n_large);
    for _ in 0..n_large {
        let key = large_sec.get_u64()?;
        let weight = large_sec.get_f64()?;
        large.push((key, weight));
    }
    large_sec.finish()?;
    let mut small_sec = r.expect_section(3)?;
    let n_small = small_sec.get_len(8)?;
    let mut small = Vec::with_capacity(n_small);
    for _ in 0..n_small {
        small.push(small_sec.get_u64()?);
    }
    small_sec.finish()?;
    VarOptSampler::from_parts(s, large, small, tau, count, total_weight)
        .map_err(CodecError::Invalid)
}

impl Summary for VarOptSampler {
    fn kind(&self) -> SummaryKind {
        SummaryKind::VarOptReservoir
    }

    fn dims(&self) -> usize {
        1
    }

    fn item_count(&self) -> usize {
        self.held()
    }

    fn total_estimate(&self) -> f64 {
        let tau = self.tau();
        let large: f64 = self.large_entries().map(|(_, w)| w.max(tau)).sum();
        large + self.small_keys().len() as f64 * tau
    }

    fn tau(&self) -> Option<f64> {
        Some(self.tau())
    }

    fn answer(&self, query: &Query, confidence: f64) -> Result<Estimate, QueryError> {
        answer_one(self, query, confidence)
    }

    fn answer_batch(
        &self,
        queries: &[Query],
        confidence: f64,
    ) -> Result<Vec<Estimate>, QueryError> {
        let tau = self.tau();
        let compiled: Vec<Vec<Vec<(u64, u64)>>> = queries
            .iter()
            .map(|q| q.boxes(1))
            .collect::<Result<_, _>>()?;
        let hit =
            |boxes: &[Vec<(u64, u64)>], k: KeyId| boxes.iter().any(|axes| in_interval(axes[0], k));
        // One pass over the reservoir per item class. Large keys are held
        // with probability 1 (exact); small keys carry the HT weight τ with
        // unknown original weight, so the variance proxy uses the per-key
        // ceiling `Var[a(i)]/pᵢ = τ(τ − wᵢ) ≤ τ²`.
        let mut large_sums = vec![0.0; queries.len()];
        let mut small_counts = vec![0usize; queries.len()];
        for (k, w) in self.large_entries() {
            for (sum, boxes) in large_sums.iter_mut().zip(&compiled) {
                if hit(boxes, k) {
                    *sum += w.max(tau);
                }
            }
        }
        for &k in self.small_keys() {
            for (count, boxes) in small_counts.iter_mut().zip(&compiled) {
                if hit(boxes, k) {
                    *count += 1;
                }
            }
        }
        large_sums
            .into_iter()
            .zip(small_counts)
            .map(|(large, small)| {
                let value = large + small as f64 * tau;
                if tau <= 0.0 || small == 0 {
                    return Ok(Estimate::exact(value));
                }
                if !(confidence > 0.0 && confidence < 1.0) {
                    return Err(QueryError::BadConfidence(confidence));
                }
                let light = small as f64 * tau;
                let (lo, hi) =
                    sas_core::bounds::weight_confidence_interval(light, tau, 1.0 - confidence);
                Ok(Estimate {
                    value,
                    variance: small as f64 * tau * tau,
                    lower: (large + lo).min(value),
                    upper: (large + hi).max(value),
                    confidence,
                })
            })
            .collect()
    }

    fn merge_in_place(
        &mut self,
        other: Box<dyn Summary>,
        _budget: Option<usize>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SummaryError> {
        // The reservoir's own capacity *is* the budget: the threshold merge
        // re-subsamples the union down to it.
        let other = downcast::<VarOptSampler>(other, SummaryKind::VarOptReservoir)?;
        self.merge(*other, rng);
        Ok(())
    }

    fn encode_body(&self, w: &mut Writer) {
        w.section(1, |w| {
            w.put_u64(self.capacity() as u64);
            w.put_f64(self.tau());
            w.put_u64(self.count() as u64);
            w.put_f64(self.total_weight());
        });
        w.section(2, |w| {
            w.put_u64(self.large_entries().count() as u64);
            for (key, weight) in self.large_entries() {
                w.put_u64(key);
                w.put_f64(weight);
            }
        });
        w.section(3, |w| {
            w.put_u64(self.small_keys().len() as u64);
            for &key in self.small_keys() {
                w.put_u64(key);
            }
        });
    }

    fn clone_box(&self) -> Box<dyn Summary> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// --- Q-digest --------------------------------------------------------------

impl Summary for QDigestSummary {
    fn kind(&self) -> SummaryKind {
        SummaryKind::QDigest
    }

    fn dims(&self) -> usize {
        2
    }

    fn item_count(&self) -> usize {
        self.size_elements()
    }

    fn total_estimate(&self) -> f64 {
        self.stored_total()
    }

    fn answer(&self, query: &Query, _confidence: f64) -> Result<Estimate, QueryError> {
        // Deterministic containment bounds: every cell's data lies inside
        // the cell, so fully-covered cells are a floor and intersecting
        // cells a ceiling on the exact answer. Reported at confidence 1.
        let mut value = 0.0;
        let (mut lower, mut upper) = (0.0, 0.0);
        for axes in query.boxes(2)? {
            let b = box_from(&axes);
            value += self.estimate_box(&b);
            let (lo, hi) = self.bound_box(&b);
            lower += lo;
            upper += hi;
        }
        Ok(deterministic_estimate(value, lower, upper))
    }

    fn merge_in_place(
        &mut self,
        other: Box<dyn Summary>,
        _budget: Option<usize>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SummaryError> {
        // Deterministic node addition; the budget does not apply (rebuild
        // from data to recompress).
        let other = downcast::<QDigestSummary>(other, SummaryKind::QDigest)?;
        sas_core::Mergeable::merge_with(self, *other, rng);
        Ok(())
    }

    fn encode_body(&self, w: &mut Writer) {
        self.write_wire(w);
    }

    fn clone_box(&self) -> Box<dyn Summary> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// --- Wavelet ---------------------------------------------------------------

impl Summary for WaveletSummary {
    fn kind(&self) -> SummaryKind {
        SummaryKind::Wavelet
    }

    fn dims(&self) -> usize {
        2
    }

    fn item_count(&self) -> usize {
        self.size_elements()
    }

    fn total_estimate(&self) -> f64 {
        self.estimate_box(&box_from(&[]))
    }

    fn answer(&self, query: &Query, _confidence: f64) -> Result<Estimate, QueryError> {
        // Deterministic truncation bound (see `WaveletSummary::bound_box`):
        // dropped coefficients contribute at most the smallest retained
        // importance each, over the O(log²) basis pairs relevant to the
        // box. Reported at confidence 1.
        let mut value = 0.0;
        let mut err = 0.0;
        for axes in query.boxes(2)? {
            let b = box_from(&axes);
            value += self.estimate_box(&b);
            err += self.bound_box(&b);
        }
        Ok(deterministic_estimate(value, value - err, value + err))
    }

    fn merge_in_place(
        &mut self,
        other: Box<dyn Summary>,
        _budget: Option<usize>,
        _rng: &mut dyn RngCore,
    ) -> Result<(), SummaryError> {
        let other = downcast::<WaveletSummary>(other, SummaryKind::Wavelet)?;
        self.try_merge(*other).map_err(SummaryError::Merge)
    }

    fn encode_body(&self, w: &mut Writer) {
        self.write_wire(w);
    }

    fn clone_box(&self) -> Box<dyn Summary> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// --- Count-sketch ----------------------------------------------------------

impl Summary for SketchSummary {
    fn kind(&self) -> SummaryKind {
        SummaryKind::CountSketch
    }

    fn dims(&self) -> usize {
        2
    }

    fn item_count(&self) -> usize {
        self.size_elements()
    }

    fn total_estimate(&self) -> f64 {
        self.estimate_box(&box_from(&[]))
    }

    fn answer(&self, query: &Query, confidence: f64) -> Result<Estimate, QueryError> {
        // Sketch confidence comes from the rows: the per-rectangle spread
        // of the independent row estimates is the variance proxy, turned
        // into a Chebyshev-style interval `value ± √(σ²/δ)`. Heuristic —
        // the rows share counters across rectangles — but it tracks the
        // sketch's actual noise level where deterministic bounds have
        // nothing to say.
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(QueryError::BadConfidence(confidence));
        }
        let mut value = 0.0;
        let mut variance = 0.0;
        for axes in query.boxes(2)? {
            let (v, var) = self.estimate_box_stats(&box_from(&axes));
            value += v;
            variance += var;
        }
        let dev = (variance / (1.0 - confidence)).sqrt();
        Ok(Estimate {
            value,
            variance,
            lower: value - dev,
            upper: value + dev,
            confidence,
        })
    }

    fn merge_in_place(
        &mut self,
        other: Box<dyn Summary>,
        _budget: Option<usize>,
        _rng: &mut dyn RngCore,
    ) -> Result<(), SummaryError> {
        let other = downcast::<SketchSummary>(other, SummaryKind::CountSketch)?;
        self.try_merge(*other).map_err(SummaryError::Merge)
    }

    fn encode_body(&self, w: &mut Writer) {
        self.write_wire(w);
    }

    fn clone_box(&self) -> Box<dyn Summary> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Builds a 2-D box from axis ranges; missing axes span the full domain
/// (the estimators clamp to their own domain bits).
fn box_from(range: &[(u64, u64)]) -> BoxRange {
    let axis = |i: usize| range.get(i).copied().unwrap_or((0, u64::MAX));
    let (x0, x1) = axis(0);
    let (y0, y1) = axis(1);
    BoxRange::xy(x0, x1, y0, y1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sas_core::WeightedKey;
    use sas_sampling::product::SpatialData;

    fn spatial(n: usize, bits: u32, seed: u64) -> SpatialData {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 1u64 << bits;
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..side),
                    rng.gen_range(0..side),
                    rng.gen_range(0.5..5.0),
                )
            })
            .collect();
        SpatialData::from_xyw(&rows)
    }

    fn keys(n: u64, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..20.0)))
            .collect()
    }

    /// Builds one fixture per registered kind (used by the sweeps below).
    fn fixtures() -> Vec<Box<dyn Summary>> {
        let data1 = keys(300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = sas_sampling::order::sample(&data1, 40, &mut rng);
        let stored = StoredSample::one_dim(sample);

        let mut varopt = VarOptSampler::new(25);
        for wk in &data1 {
            varopt.push(wk.key, wk.weight, &mut rng);
        }

        let data2 = spatial(200, 6, 3);
        let qdigest = QDigestSummary::build(&data2, 6, 50);
        let wavelet = WaveletSummary::build(&data2, 6, 6, 60);
        let sketch = SketchSummary::build(&data2, 6, 6, 800, 7);

        vec![
            Box::new(stored),
            Box::new(varopt),
            Box::new(qdigest),
            Box::new(wavelet),
            Box::new(sketch),
        ]
    }

    fn probe_ranges() -> Vec<Vec<(u64, u64)>> {
        vec![
            vec![(0, u64::MAX), (0, u64::MAX)],
            vec![(0, 31), (0, 31)],
            vec![(10, 50), (5, 60)],
            vec![(100, 250)],
        ]
    }

    #[test]
    fn registry_is_consistent() {
        // Tags and names are unique; lookups invert each other.
        let mut tags = std::collections::HashSet::new();
        let mut names = std::collections::HashSet::new();
        for e in REGISTRY {
            assert!(tags.insert(e.tag), "duplicate tag {}", e.tag);
            assert!(names.insert(e.name), "duplicate name {}", e.name);
            assert_eq!(SummaryKind::from_tag(e.tag), Some(e.kind));
            assert_eq!(SummaryKind::from_name(e.name), Some(e.kind));
            assert_eq!(e.kind.tag(), e.tag);
            assert_eq!(e.kind.name(), e.name);
        }
        assert_eq!(SummaryKind::all().count(), 5);
        assert_eq!(SummaryKind::from_tag(999), None);
        assert_eq!(SummaryKind::from_name("bogus"), None);
    }

    #[test]
    fn every_kind_roundtrips_bit_exactly() {
        for original in fixtures() {
            let bytes = encode_summary(original.as_ref());
            let decoded = decode_summary(&bytes)
                .unwrap_or_else(|e| panic!("{}: decode failed: {e}", original.kind()));
            assert_eq!(decoded.kind(), original.kind());
            assert_eq!(decoded.dims(), original.dims());
            assert_eq!(decoded.item_count(), original.item_count());
            assert_eq!(decoded.tau(), original.tau());
            for range in probe_ranges() {
                let a = original.range_sum(&range);
                let b = decoded.range_sum(&range);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: range {range:?}: {a} vs {b}",
                    original.kind()
                );
            }
            // Re-encoding the decoded summary reproduces the same bytes.
            assert_eq!(
                bytes,
                encode_summary(decoded.as_ref()),
                "{}",
                original.kind()
            );
        }
    }

    #[test]
    fn cross_kind_merges_are_rejected() {
        let all = fixtures();
        for (i, a) in fixtures().into_iter().enumerate() {
            let mut a = a;
            for (j, b) in all.iter().enumerate() {
                if i == j {
                    continue;
                }
                let b = decode_summary(&encode_summary(b.as_ref())).unwrap();
                let mut rng = StdRng::seed_from_u64(1);
                assert!(
                    a.merge_in_place(b, None, &mut rng).is_err(),
                    "merging kind {j} into kind {i} must fail"
                );
            }
        }
    }

    #[test]
    fn varopt_reservoir_resumes_after_decode() {
        // The round-tripped reservoir is live state: pushing the same
        // suffix with the same RNG stream matches the original exactly.
        let data = keys(600, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let mut original = VarOptSampler::new(30);
        for wk in &data[..400] {
            original.push(wk.key, wk.weight, &mut rng);
        }
        let bytes = encode_summary(&original);
        let decoded = decode_summary(&bytes).unwrap();
        let mut restored = *decoded.into_any().downcast::<VarOptSampler>().unwrap();
        let (mut r1, mut r2) = (StdRng::seed_from_u64(99), StdRng::seed_from_u64(99));
        for wk in &data[400..] {
            original.push(wk.key, wk.weight, &mut r1);
            restored.push(wk.key, wk.weight, &mut r2);
        }
        let (a, b) = (original.finish(), restored.finish());
        assert_eq!(a.tau().to_bits(), b.tau().to_bits());
        let ka: Vec<_> = a.keys().collect();
        let kb: Vec<_> = b.keys().collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn geometry_mismatches_fail_cleanly() {
        let d = spatial(50, 5, 21);
        let mut rng = StdRng::seed_from_u64(22);
        // Sketch: different build seeds → different hash seeds.
        let mut a: Box<dyn Summary> = Box::new(SketchSummary::build(&d, 5, 5, 400, 1));
        let b: Box<dyn Summary> = Box::new(SketchSummary::build(&d, 5, 5, 400, 2));
        assert!(a.merge_in_place(b, None, &mut rng).is_err());
        // Wavelet: different domain bits.
        let mut wa: Box<dyn Summary> = Box::new(WaveletSummary::build(&d, 5, 5, 40));
        let wb: Box<dyn Summary> = Box::new(WaveletSummary::build(&d, 6, 6, 40));
        assert!(wa.merge_in_place(wb, None, &mut rng).is_err());
    }

    #[test]
    fn erased_merge_matches_concrete_merge() {
        // Wavelet: erased merge must equal the concrete coefficient merge.
        let all = spatial(300, 6, 31);
        let rows: Vec<(u64, u64, f64)> = all
            .keys
            .iter()
            .zip(&all.points)
            .map(|(wk, p)| (p.coord(0), p.coord(1), wk.weight))
            .collect();
        let (first, second) = rows.split_at(150);
        let build = |rows: &[(u64, u64, f64)]| {
            WaveletSummary::build(&SpatialData::from_xyw(rows), 6, 6, 5000)
        };
        let mut concrete = build(first);
        concrete.try_merge(build(second)).unwrap();
        let mut erased: Box<dyn Summary> = Box::new(build(first));
        let mut rng = StdRng::seed_from_u64(1);
        erased
            .merge_in_place(Box::new(build(second)), None, &mut rng)
            .unwrap();
        for range in probe_ranges() {
            assert_eq!(
                concrete.range_sum(&range).to_bits(),
                erased.range_sum(&range).to_bits()
            );
        }
    }

    #[test]
    fn clone_box_is_a_deep_independent_copy() {
        for original in fixtures() {
            let clone = original.clone_box();
            assert_eq!(clone.kind(), original.kind());
            // Byte-identical encodings…
            assert_eq!(
                encode_summary(original.as_ref()),
                encode_summary(clone.as_ref()),
                "{}",
                original.kind()
            );
            // …and mutating the clone (merge into itself) never disturbs
            // the original's encoding.
            let mut clone = clone;
            let peer = decode_summary(&encode_summary(original.as_ref())).unwrap();
            let before = encode_summary(original.as_ref());
            let mut rng = StdRng::seed_from_u64(7);
            clone
                .merge_in_place(peer, None, &mut rng)
                .unwrap_or_else(|e| panic!("{}: self-merge failed: {e}", original.kind()));
            assert_eq!(before, encode_summary(original.as_ref()));
        }
    }

    #[test]
    fn merge_tree_matches_cli_merge_order() {
        // Four disjoint parts, merged as a tree, equal the explicit
        // ((a+b)+(c+d)) pairing bit-for-bit.
        let parts: Vec<Vec<WeightedKey>> = (0..4u64)
            .map(|p| {
                keys(50, p + 40)
                    .iter()
                    .map(|wk| WeightedKey::new(wk.key + p * 1000, wk.weight))
                    .collect()
            })
            .collect();
        let build = |rows: &Vec<WeightedKey>, seed| -> Box<dyn Summary> {
            let mut rng = StdRng::seed_from_u64(seed);
            Box::new(StoredSample::one_dim(sas_sampling::order::sample(
                rows, 20, &mut rng,
            )))
        };
        let summaries: Vec<Box<dyn Summary>> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| build(p, i as u64))
            .collect();
        let mut rng = StdRng::seed_from_u64(9);
        let tree = merge_tree(summaries, Some(30), &mut rng).unwrap();

        let mut rng = StdRng::seed_from_u64(9);
        let mut ab = build(&parts[0], 0);
        ab.merge_in_place(build(&parts[1], 1), Some(30), &mut rng)
            .unwrap();
        let mut cd = build(&parts[2], 2);
        cd.merge_in_place(build(&parts[3], 3), Some(30), &mut rng)
            .unwrap();
        ab.merge_in_place(cd, Some(30), &mut rng).unwrap();
        assert_eq!(encode_summary(tree.as_ref()), encode_summary(ab.as_ref()));
        // Empty input is an error, single input is the identity.
        let mut rng = StdRng::seed_from_u64(1);
        assert!(merge_tree(vec![], None, &mut rng).is_err());
        let one = merge_tree(vec![build(&parts[0], 0)], None, &mut rng).unwrap();
        assert_eq!(
            encode_summary(one.as_ref()),
            encode_summary(build(&parts[0], 0).as_ref())
        );
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let bytes = sas_codec::encode_frame(999, |w| w.put_u64(0));
        assert!(matches!(
            decode_summary(&bytes),
            Err(CodecError::UnknownKind(999))
        ));
    }

    #[test]
    fn every_kind_answers_with_bounds_containing_the_value() {
        for s in fixtures() {
            for range in probe_ranges() {
                let range = &range[..range.len().min(s.dims())];
                let q = Query::BoxRange(range.to_vec());
                let e = s
                    .answer(&q, 0.9)
                    .unwrap_or_else(|err| panic!("{}: {q}: {err}", s.kind()));
                // The estimate's value is bit-identical to the legacy
                // range_sum path, and sits inside its own interval.
                assert_eq!(
                    e.value.to_bits(),
                    s.range_sum(range).to_bits(),
                    "{}: {q}",
                    s.kind()
                );
                assert!(
                    e.lower <= e.value && e.value <= e.upper,
                    "{}: {q}: {e:?}",
                    s.kind()
                );
                assert!(e.variance >= 0.0, "{}: {q}", s.kind());
                assert!(
                    (0.0..=1.0).contains(&e.confidence),
                    "{}: {q}: {e:?}",
                    s.kind()
                );
            }
        }
    }

    #[test]
    fn every_kind_answers_every_query_shape() {
        for s in fixtures() {
            let queries = if s.dims() == 1 {
                vec![
                    Query::Total,
                    Query::Point(vec![5]),
                    Query::HierarchyNode { level: 6, index: 1 },
                    Query::MultiRange(vec![vec![(0, 49)], vec![(100, 199)]]),
                ]
            } else {
                vec![
                    Query::Total,
                    Query::Point(vec![5, 9]),
                    Query::HierarchyNode { level: 4, index: 1 },
                    Query::MultiRange(vec![vec![(0, 15), (0, 63)], vec![(16, 31), (0, 63)]]),
                ]
            };
            for q in queries {
                let e = s
                    .answer(&q, 0.9)
                    .unwrap_or_else(|err| panic!("{}: {q}: {err}", s.kind()));
                assert!(
                    e.lower <= e.value && e.value <= e.upper,
                    "{}: {q}: {e:?}",
                    s.kind()
                );
            }
            // Too many axes for the summary's dimensionality is an error.
            let overdim = Query::BoxRange(vec![(0, 1); s.dims() + 1]);
            assert!(s.answer(&overdim, 0.9).is_err(), "{}", s.kind());
        }
    }

    #[test]
    fn batch_answers_match_individual_answers_bitwise() {
        let queries = vec![
            Query::interval(0, 99),
            Query::Total,
            Query::MultiRange(vec![vec![(0, 9)], vec![(50, 149)]]),
            Query::Point(vec![7]),
        ];
        for s in fixtures().into_iter().filter(|s| s.dims() == 1) {
            let batch = s.answer_batch(&queries, 0.95).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (q, b) in queries.iter().zip(&batch) {
                let single = s.answer(q, 0.95).unwrap();
                assert_eq!(
                    single.value.to_bits(),
                    b.value.to_bits(),
                    "{}: {q}",
                    s.kind()
                );
                assert_eq!(
                    single.lower.to_bits(),
                    b.lower.to_bits(),
                    "{}: {q}",
                    s.kind()
                );
                assert_eq!(
                    single.upper.to_bits(),
                    b.upper.to_bits(),
                    "{}: {q}",
                    s.kind()
                );
            }
        }
    }

    #[test]
    fn multirange_answer_adds_disjoint_boxes() {
        for s in fixtures() {
            let (a, b) = if s.dims() == 1 {
                (vec![(0u64, 99u64)], vec![(200u64, 299u64)])
            } else {
                (vec![(0, 31), (0, 31)], vec![(32, 63), (0, 31)])
            };
            let ea = s.answer(&Query::BoxRange(a.clone()), 0.9).unwrap();
            let eb = s.answer(&Query::BoxRange(b.clone()), 0.9).unwrap();
            let both = s.answer(&Query::MultiRange(vec![a, b]), 0.9).unwrap();
            assert!(
                (both.value - (ea.value + eb.value)).abs() <= 1e-9 * (1.0 + both.value.abs()),
                "{}: {} vs {} + {}",
                s.kind(),
                both.value,
                ea.value,
                eb.value
            );
        }
    }

    #[test]
    fn sample_confidence_tightens_with_delta() {
        // Wider confidence → wider interval, for a sample with light keys.
        let data = keys(400, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let sample = sas_sampling::order::sample(&data, 50, &mut rng);
        let s: Box<dyn Summary> = Box::new(StoredSample::one_dim(sample));
        let q = Query::interval(0, 199);
        let loose = s.answer(&q, 0.5).unwrap();
        let tight = s.answer(&q, 0.99).unwrap();
        assert!(loose.upper - loose.lower <= tight.upper - tight.lower);
        // A probabilistic bound at confidence 1 is rejected.
        assert!(matches!(
            s.answer(&q, 1.0),
            Err(QueryError::BadConfidence(_))
        ));
        // Malformed queries are rejected, not mis-answered.
        assert!(s.answer(&Query::BoxRange(vec![(9, 3)]), 0.9).is_err());
    }
}
