//! [`SegmentSummary`] — a zero-copy [`Summary`] served straight from v2
//! segment bytes (see `sas_codec::segment` for the byte layout).
//!
//! A v1 frame must be *decoded* into an owned [`StoredSample`] or
//! [`VarOptSampler`] before it can answer anything; a segment's column runs
//! **are** the query representation. [`SegmentSummary::open`] validates the
//! bytes once (checksum, layout, and every invariant the v1 decoder would
//! enforce), and from then on `answer` / `answer_batch` scan the columns in
//! place — the store keeps cold windows as `mmap`ed segments and serves
//! Estimate queries off the page cache without ever materializing the
//! summary on the heap.
//!
//! ## Bit-identity contract
//!
//! The hot loops below deliberately **mirror** the owned implementations in
//! `erased.rs` (`StoredSample::answer_batch`, `VarOptSampler::answer_batch`)
//! operation for operation: same item order, same hoisted light/heavy
//! classification, same accumulator, same finish. Columns hold the same
//! little-endian words the v1 wire carries, so every float travels and
//! folds identically and the answers are bit-identical to decoding the v1
//! frame and asking it — pinned by the multi-seed property tests at the
//! bottom of this file. When one side changes, change the other.
//!
//! Merging is the one thing a segment cannot do in place:
//! [`SegmentSummary::hydrate`] rebuilds the owned summary (the store calls
//! it on the merge and compaction paths only).

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use rand::RngCore;

use sas_codec::segment::{SegmentBuilder, SegmentView};
use sas_codec::{CodecError, Writer};
use sas_core::varopt::VarOptSampler;
use sas_core::KeyId;

use crate::erased::{answer_one, in_interval, SummaryError};
use crate::query::{Estimate, Query, QueryError, SampleAccumulator};
use crate::stored::StoredSample;
use crate::{Summary, SummaryKind};

/// Shared immutable bytes a segment view borrows from — an owned buffer or
/// an `mmap`ed file (the store's `Mapped` implements `AsRef<[u8]>`).
pub type SharedBytes = Arc<dyn AsRef<[u8]> + Send + Sync>;

// Column ids for the sample layout (kind tag 1). Meta packs the section-1
// scalars of the v1 frame as 8-byte words: `[dims: u64, tau: f64 bits]`.
/// Sample meta column: `[dims, tau bits]`.
pub const COL_SAMPLE_META: u32 = 1;
/// Sample key column.
pub const COL_SAMPLE_KEYS: u32 = 2;
/// Sample original-weight column.
pub const COL_SAMPLE_WEIGHTS: u32 = 3;
/// Sample HT adjusted-weight column.
pub const COL_SAMPLE_ADJUSTED: u32 = 4;
/// Sample x-coordinate column (count 0 for 1-D).
pub const COL_SAMPLE_XS: u32 = 5;
/// Sample y-coordinate column (count 0 for 1-D).
pub const COL_SAMPLE_YS: u32 = 6;

// Column ids for the VarOpt layout (kind tag 2). Meta is
// `[capacity: u64, tau: f64 bits, count: u64, total_weight: f64 bits]`.
/// VarOpt meta column: `[capacity, tau bits, count, total_weight bits]`.
pub const COL_VAROPT_META: u32 = 1;
/// VarOpt large-partition key column (heap order).
pub const COL_VAROPT_LARGE_KEYS: u32 = 2;
/// VarOpt large-partition weight column, aligned with the keys.
pub const COL_VAROPT_LARGE_WEIGHTS: u32 = 3;
/// VarOpt small-partition key column.
pub const COL_VAROPT_SMALL_KEYS: u32 = 4;

/// Encodes a summary into v2 segment bytes, if its kind has a segment
/// layout (finished samples and VarOpt reservoirs — the store's two
/// stored-sample kinds). Returns `None` for the deterministic kinds, which
/// stay on the v1 frame format.
pub fn encode_segment(s: &dyn Summary) -> Option<Vec<u8>> {
    if let Some(s) = s.as_any().downcast_ref::<StoredSample>() {
        let mut b = SegmentBuilder::new(SummaryKind::Sample.tag());
        b.column_u64(COL_SAMPLE_META, [s.dims() as u64, s.tau().to_bits()]);
        b.column_u64(COL_SAMPLE_KEYS, s.keys().iter().copied());
        b.column_f64(COL_SAMPLE_WEIGHTS, s.weights().iter().copied());
        b.column_f64(COL_SAMPLE_ADJUSTED, s.adjusted_weights().iter().copied());
        b.column_u64(COL_SAMPLE_XS, s.xs().iter().copied());
        b.column_u64(COL_SAMPLE_YS, s.ys().iter().copied());
        return Some(b.finish());
    }
    if let Some(v) = s.as_any().downcast_ref::<VarOptSampler>() {
        let mut b = SegmentBuilder::new(SummaryKind::VarOptReservoir.tag());
        b.column_u64(
            COL_VAROPT_META,
            [
                v.capacity() as u64,
                v.tau().to_bits(),
                v.count() as u64,
                v.total_weight().to_bits(),
            ],
        );
        b.column_u64(COL_VAROPT_LARGE_KEYS, v.large_entries().map(|(k, _)| k));
        b.column_f64(COL_VAROPT_LARGE_WEIGHTS, v.large_entries().map(|(_, w)| w));
        b.column_u64(COL_VAROPT_SMALL_KEYS, v.small_keys().iter().copied());
        return Some(b.finish());
    }
    None
}

/// A byte range inside the segment, proven in-bounds at open time.
#[derive(Debug, Clone, Copy)]
struct Col {
    start: usize,
    end: usize,
}

impl Col {
    fn of(entry: &sas_codec::segment::SectionEntry) -> Self {
        Self {
            start: entry.offset as usize,
            end: (entry.offset + entry.len) as usize,
        }
    }

    fn count(&self) -> usize {
        (self.end - self.start) / 8
    }

    fn slice<'a>(&self, bytes: &'a [u8]) -> &'a [u8] {
        &bytes[self.start..self.end]
    }
}

/// Iterates a column run as little-endian `u64`s.
fn u64s(bytes: &[u8]) -> impl ExactSizeIterator<Item = u64> + '_ {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
}

/// Iterates a column run as `f64` bit patterns.
fn f64s(bytes: &[u8]) -> impl ExactSizeIterator<Item = f64> + '_ {
    u64s(bytes).map(f64::from_bits)
}

/// The validated column layout of one segment.
#[derive(Debug, Clone)]
enum Layout {
    Sample {
        dims: usize,
        tau: f64,
        total: f64,
        keys: Col,
        weights: Col,
        adjusted: Col,
        xs: Col,
        ys: Col,
    },
    VarOpt {
        capacity: usize,
        tau: f64,
        count: usize,
        total_weight: f64,
        total: f64,
        large_keys: Col,
        large_weights: Col,
        small_keys: Col,
    },
}

/// A summary served in place from v2 segment bytes (module docs above).
#[derive(Clone)]
pub struct SegmentSummary {
    bytes: SharedBytes,
    layout: Layout,
}

impl fmt::Debug for SegmentSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentSummary")
            .field("bytes", &self.data().len())
            .field("layout", &self.layout)
            .finish()
    }
}

fn section(
    view: &SegmentView<'_>,
    id: u32,
) -> Result<sas_codec::segment::SectionEntry, CodecError> {
    view.sections()
        .iter()
        .find(|e| e.id == id)
        .copied()
        .ok_or_else(|| CodecError::Invalid(format!("missing segment section {id}")))
}

impl SegmentSummary {
    /// Opens a segment over shared bytes: one full validation pass
    /// (checksum, table, and every invariant the v1 decoder enforces —
    /// including that [`SegmentSummary::hydrate`] cannot fail later), then
    /// queries read the columns in place. Never panics on corrupted,
    /// truncated, or forged input.
    pub fn open(bytes: SharedBytes) -> Result<Self, CodecError> {
        let layout = Self::validate((*bytes).as_ref())?;
        Ok(Self { bytes, layout })
    }

    /// [`SegmentSummary::open`] over an owned buffer.
    pub fn from_vec(bytes: Vec<u8>) -> Result<Self, CodecError> {
        Self::open(Arc::new(bytes))
    }

    fn validate(b: &[u8]) -> Result<Layout, CodecError> {
        let view = SegmentView::parse(b)?;
        match SummaryKind::from_tag(view.kind()) {
            Some(SummaryKind::Sample) => Self::validate_sample(b, &view),
            Some(SummaryKind::VarOptReservoir) => Self::validate_varopt(b, &view),
            Some(kind) => Err(CodecError::Invalid(format!(
                "summary kind {kind} has no segment layout"
            ))),
            None => Err(CodecError::UnknownKind(view.kind())),
        }
    }

    fn validate_sample(b: &[u8], view: &SegmentView<'_>) -> Result<Layout, CodecError> {
        let meta = view.column(COL_SAMPLE_META).ok_or_else(|| {
            CodecError::Invalid(format!("missing segment section {COL_SAMPLE_META}"))
        })?;
        if meta.count() != 2 {
            return Err(CodecError::Invalid(format!(
                "sample meta holds {} words, expected 2",
                meta.count()
            )));
        }
        let dims = meta.u64_at(0).expect("count 2") as usize;
        let tau = meta.f64_at(1).expect("count 2");
        if dims != 1 && dims != 2 {
            return Err(CodecError::Invalid(format!("unsupported dims {dims}")));
        }
        if !(tau.is_finite() && tau >= 0.0) {
            return Err(CodecError::Invalid(format!("invalid threshold {tau}")));
        }
        let keys = Col::of(&section(view, COL_SAMPLE_KEYS)?);
        let weights = Col::of(&section(view, COL_SAMPLE_WEIGHTS)?);
        let adjusted = Col::of(&section(view, COL_SAMPLE_ADJUSTED)?);
        let xs = Col::of(&section(view, COL_SAMPLE_XS)?);
        let ys = Col::of(&section(view, COL_SAMPLE_YS)?);
        let n = keys.count();
        if weights.count() != n || adjusted.count() != n {
            return Err(CodecError::Invalid(format!(
                "column counts disagree: {n} keys, {} weights, {} adjusted",
                weights.count(),
                adjusted.count()
            )));
        }
        let expected = if dims == 2 { n } else { 0 };
        if xs.count() != expected || ys.count() != expected {
            return Err(CodecError::Invalid(format!(
                "{} locations for {expected} expected",
                xs.count().max(ys.count())
            )));
        }
        for (w, a) in f64s(weights.slice(b)).zip(f64s(adjusted.slice(b))) {
            if !(w.is_finite() && a.is_finite() && w >= 0.0 && a >= 0.0) {
                return Err(CodecError::Invalid(format!(
                    "invalid weight pair ({w}, {a})"
                )));
            }
        }
        // Mirrors `StoredSample::total_estimate` (same fold order).
        let total = f64s(adjusted.slice(b)).sum();
        Ok(Layout::Sample {
            dims,
            tau,
            total,
            keys,
            weights,
            adjusted,
            xs,
            ys,
        })
    }

    fn validate_varopt(b: &[u8], view: &SegmentView<'_>) -> Result<Layout, CodecError> {
        let meta = view.column(COL_VAROPT_META).ok_or_else(|| {
            CodecError::Invalid(format!("missing segment section {COL_VAROPT_META}"))
        })?;
        if meta.count() != 4 {
            return Err(CodecError::Invalid(format!(
                "varopt meta holds {} words, expected 4",
                meta.count()
            )));
        }
        let capacity = meta.u64_at(0).expect("count 4") as usize;
        let tau = meta.f64_at(1).expect("count 4");
        let count = meta.u64_at(2).expect("count 4") as usize;
        let total_weight = meta.f64_at(3).expect("count 4");
        let large_keys = Col::of(&section(view, COL_VAROPT_LARGE_KEYS)?);
        let large_weights = Col::of(&section(view, COL_VAROPT_LARGE_WEIGHTS)?);
        let small_keys = Col::of(&section(view, COL_VAROPT_SMALL_KEYS)?);
        if large_weights.count() != large_keys.count() {
            return Err(CodecError::Invalid(format!(
                "column counts disagree: {} large keys, {} large weights",
                large_keys.count(),
                large_weights.count()
            )));
        }
        // Reassembling through `from_parts` enforces every reservoir
        // invariant (heap order, weights vs threshold, counts) — and proves
        // `hydrate` cannot fail on these bytes.
        let large: Vec<(KeyId, f64)> = u64s(large_keys.slice(b))
            .zip(f64s(large_weights.slice(b)))
            .collect();
        let small: Vec<KeyId> = u64s(small_keys.slice(b)).collect();
        VarOptSampler::from_parts(capacity, large, small, tau, count, total_weight)
            .map_err(CodecError::Invalid)?;
        // Mirrors the erased `VarOptSampler::total_estimate` (same order).
        let large_total: f64 = f64s(large_weights.slice(b)).map(|w| w.max(tau)).sum();
        let total = large_total + small_keys.count() as f64 * tau;
        Ok(Layout::VarOpt {
            capacity,
            tau,
            count,
            total_weight,
            total,
            large_keys,
            large_weights,
            small_keys,
        })
    }

    fn data(&self) -> &[u8] {
        (*self.bytes).as_ref()
    }

    /// The segment size in bytes.
    pub fn segment_len(&self) -> usize {
        self.data().len()
    }

    /// Rebuilds the owned summary from the columns — the store's merge and
    /// compaction paths call this; queries never need it. Infallible
    /// because [`SegmentSummary::open`] already enforced every decoder
    /// invariant on these bytes.
    pub fn hydrate(&self) -> Box<dyn Summary> {
        let b = self.data();
        match &self.layout {
            Layout::Sample {
                dims,
                tau,
                keys,
                weights,
                adjusted,
                xs,
                ys,
                ..
            } => Box::new(StoredSample::from_columns(
                u64s(keys.slice(b)).collect(),
                f64s(weights.slice(b)).collect(),
                f64s(adjusted.slice(b)).collect(),
                u64s(xs.slice(b)).collect(),
                u64s(ys.slice(b)).collect(),
                *tau,
                *dims,
            )),
            Layout::VarOpt {
                capacity,
                tau,
                count,
                total_weight,
                large_keys,
                large_weights,
                small_keys,
                ..
            } => {
                let large: Vec<(KeyId, f64)> = u64s(large_keys.slice(b))
                    .zip(f64s(large_weights.slice(b)))
                    .collect();
                let small: Vec<KeyId> = u64s(small_keys.slice(b)).collect();
                Box::new(
                    VarOptSampler::from_parts(*capacity, large, small, *tau, *count, *total_weight)
                        .expect("invariants were validated when the segment was opened"),
                )
            }
        }
    }

    /// Mirror of `StoredSample::answer_batch` over column bytes — see the
    /// module docs for the bit-identity contract. Keep the twins in sync.
    #[allow(clippy::too_many_arguments)]
    fn answer_batch_sample(
        &self,
        dims: usize,
        tau: f64,
        keys: Col,
        weights: Col,
        adjusted: Col,
        xs: Col,
        ys: Col,
        queries: &[Query],
        confidence: f64,
    ) -> Result<Vec<Estimate>, QueryError> {
        let b = self.data();
        let compiled: Vec<Vec<Vec<(u64, u64)>>> = queries
            .iter()
            .map(|q| q.boxes(dims))
            .collect::<Result<_, _>>()?;
        let two_dim = dims == 2;
        let mut accs = vec![SampleAccumulator::default(); queries.len()];
        let mut qidx: Vec<usize> = Vec::with_capacity(queries.len());
        let mut b0: Vec<(u64, u64)> = Vec::with_capacity(queries.len());
        let mut b1: Vec<(u64, u64)> = Vec::with_capacity(queries.len());
        type MultiBox<'a> = (usize, &'a [Vec<(u64, u64)>]);
        let mut multi: Vec<MultiBox<'_>> = Vec::new();
        for (qi, boxes) in compiled.iter().enumerate() {
            if let [axes] = boxes.as_slice() {
                qidx.push(qi);
                b0.push(axes[0]);
                if two_dim {
                    b1.push(axes[1]);
                }
            } else {
                multi.push((qi, boxes.as_slice()));
            }
        }
        let mut flat = vec![SampleAccumulator::default(); qidx.len()];
        if two_dim {
            for (((x, y), w), a) in u64s(xs.slice(b))
                .zip(u64s(ys.slice(b)))
                .zip(f64s(weights.slice(b)))
                .zip(f64s(adjusted.slice(b)))
            {
                let light = tau > 0.0 && w < tau;
                let light_var = if light { tau * (tau - w) } else { 0.0 };
                for ((acc, &(x0, x1)), &(y0, y1)) in flat.iter_mut().zip(&b0).zip(&b1) {
                    if x0 <= x && x <= x1 && y0 <= y && y <= y1 {
                        acc.add_classified(a, tau, light, light_var);
                    }
                }
                for &(qi, boxes) in &multi {
                    if boxes
                        .iter()
                        .any(|axes| in_interval(axes[0], x) && in_interval(axes[1], y))
                    {
                        accs[qi].add_classified(a, tau, light, light_var);
                    }
                }
            }
        } else {
            for ((k, w), a) in u64s(keys.slice(b))
                .zip(f64s(weights.slice(b)))
                .zip(f64s(adjusted.slice(b)))
            {
                let light = tau > 0.0 && w < tau;
                let light_var = if light { tau * (tau - w) } else { 0.0 };
                for (acc, &(lo, hi)) in flat.iter_mut().zip(&b0) {
                    if lo <= k && k <= hi {
                        acc.add_classified(a, tau, light, light_var);
                    }
                }
                for &(qi, boxes) in &multi {
                    if boxes.iter().any(|axes| in_interval(axes[0], k)) {
                        accs[qi].add_classified(a, tau, light, light_var);
                    }
                }
            }
        }
        for (&qi, acc) in qidx.iter().zip(flat) {
            accs[qi] = acc;
        }
        accs.into_iter()
            .map(|a| a.finish(tau, confidence))
            .collect()
    }

    /// Mirror of the erased `VarOptSampler::answer_batch` over column
    /// bytes — same bit-identity contract as the sample twin.
    fn answer_batch_varopt(
        &self,
        tau: f64,
        large_keys: Col,
        large_weights: Col,
        small_keys: Col,
        queries: &[Query],
        confidence: f64,
    ) -> Result<Vec<Estimate>, QueryError> {
        let b = self.data();
        let compiled: Vec<Vec<Vec<(u64, u64)>>> = queries
            .iter()
            .map(|q| q.boxes(1))
            .collect::<Result<_, _>>()?;
        let hit =
            |boxes: &[Vec<(u64, u64)>], k: KeyId| boxes.iter().any(|axes| in_interval(axes[0], k));
        let mut large_sums = vec![0.0; queries.len()];
        let mut small_counts = vec![0usize; queries.len()];
        for (k, w) in u64s(large_keys.slice(b)).zip(f64s(large_weights.slice(b))) {
            for (sum, boxes) in large_sums.iter_mut().zip(&compiled) {
                if hit(boxes, k) {
                    *sum += w.max(tau);
                }
            }
        }
        for k in u64s(small_keys.slice(b)) {
            for (count, boxes) in small_counts.iter_mut().zip(&compiled) {
                if hit(boxes, k) {
                    *count += 1;
                }
            }
        }
        large_sums
            .into_iter()
            .zip(small_counts)
            .map(|(large, small)| {
                let value = large + small as f64 * tau;
                if tau <= 0.0 || small == 0 {
                    return Ok(Estimate::exact(value));
                }
                if !(confidence > 0.0 && confidence < 1.0) {
                    return Err(QueryError::BadConfidence(confidence));
                }
                let light = small as f64 * tau;
                let (lo, hi) =
                    sas_core::bounds::weight_confidence_interval(light, tau, 1.0 - confidence);
                Ok(Estimate {
                    value,
                    variance: small as f64 * tau * tau,
                    lower: (large + lo).min(value),
                    upper: (large + hi).max(value),
                    confidence,
                })
            })
            .collect()
    }
}

impl Summary for SegmentSummary {
    fn kind(&self) -> SummaryKind {
        match self.layout {
            Layout::Sample { .. } => SummaryKind::Sample,
            Layout::VarOpt { .. } => SummaryKind::VarOptReservoir,
        }
    }

    fn dims(&self) -> usize {
        match self.layout {
            Layout::Sample { dims, .. } => dims,
            Layout::VarOpt { .. } => 1,
        }
    }

    fn item_count(&self) -> usize {
        match &self.layout {
            Layout::Sample { keys, .. } => keys.count(),
            Layout::VarOpt {
                large_keys,
                small_keys,
                ..
            } => large_keys.count() + small_keys.count(),
        }
    }

    fn total_estimate(&self) -> f64 {
        match self.layout {
            Layout::Sample { total, .. } => total,
            Layout::VarOpt { total, .. } => total,
        }
    }

    fn tau(&self) -> Option<f64> {
        match self.layout {
            Layout::Sample { tau, .. } => Some(tau),
            Layout::VarOpt { tau, .. } => Some(tau),
        }
    }

    fn answer(&self, query: &Query, confidence: f64) -> Result<Estimate, QueryError> {
        answer_one(self, query, confidence)
    }

    fn answer_batch(
        &self,
        queries: &[Query],
        confidence: f64,
    ) -> Result<Vec<Estimate>, QueryError> {
        match self.layout {
            Layout::Sample {
                dims,
                tau,
                keys,
                weights,
                adjusted,
                xs,
                ys,
                ..
            } => self.answer_batch_sample(
                dims, tau, keys, weights, adjusted, xs, ys, queries, confidence,
            ),
            Layout::VarOpt {
                tau,
                large_keys,
                large_weights,
                small_keys,
                ..
            } => self.answer_batch_varopt(
                tau,
                large_keys,
                large_weights,
                small_keys,
                queries,
                confidence,
            ),
        }
    }

    fn merge_in_place(
        &mut self,
        _other: Box<dyn Summary>,
        _budget: Option<usize>,
        _rng: &mut dyn RngCore,
    ) -> Result<(), SummaryError> {
        // A segment is immutable by design; the store hydrates cold windows
        // before merging. Failing loudly here keeps that contract honest.
        Err(SummaryError::Merge(
            "segment-backed summary must be hydrated before merging".into(),
        ))
    }

    fn encode_body(&self, w: &mut Writer) {
        // Rare path (the store re-encodes only owned summaries): delegate
        // to the hydrated form so the v1 body is bit-identical to it.
        self.hydrate().encode_body(w);
    }

    fn clone_box(&self) -> Box<dyn Summary> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_summary, encode_summary};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sas_core::WeightedKey;
    use sas_structures::product::Point;
    use std::collections::HashMap;

    fn weighted(n: u64, seed: u64) -> Vec<WeightedKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|k| {
                let w = if rng.gen_bool(0.05) {
                    rng.gen_range(50.0..400.0)
                } else {
                    rng.gen_range(0.1..8.0)
                };
                WeightedKey::new(k, w)
            })
            .collect()
    }

    fn sample_fixture(seed: u64, two_dim: bool) -> StoredSample {
        let data = weighted(300, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let sample = sas_sampling::order::sample(&data, 48, &mut rng);
        if two_dim {
            let points: HashMap<u64, Point> = data
                .iter()
                .map(|wk| (wk.key, Point::xy(wk.key % 64, (wk.key * 7919) % 64)))
                .collect();
            StoredSample::two_dim(sample, points).unwrap()
        } else {
            StoredSample::one_dim(sample)
        }
    }

    fn varopt_fixture(seed: u64) -> VarOptSampler {
        let data = weighted(250, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let mut v = VarOptSampler::new(32);
        for wk in &data {
            v.push(wk.key, wk.weight, &mut rng);
        }
        v
    }

    fn probe_queries(two_dim: bool) -> Vec<Query> {
        if two_dim {
            vec![
                Query::Total,
                Query::BoxRange(vec![(0, 31), (0, 31)]),
                Query::BoxRange(vec![(10, 50), (5, 60)]),
                Query::Point(vec![5, 9]),
                Query::HierarchyNode { level: 4, index: 1 },
                Query::MultiRange(vec![vec![(0, 15), (0, 63)], vec![(16, 31), (0, 63)]]),
            ]
        } else {
            vec![
                Query::Total,
                Query::interval(0, 99),
                Query::interval(42, 199),
                Query::Point(vec![7]),
                Query::HierarchyNode { level: 6, index: 1 },
                Query::MultiRange(vec![vec![(0, 49)], vec![(100, 199)]]),
            ]
        }
    }

    fn assert_estimates_bit_identical(owned: &dyn Summary, seg: &SegmentSummary, ctx: &str) {
        let queries = probe_queries(owned.dims() == 2);
        for confidence in [0.5, 0.9, 0.99] {
            let a = owned.answer_batch(&queries, confidence).unwrap();
            let b = seg.answer_batch(&queries, confidence).unwrap();
            assert_eq!(a.len(), b.len());
            for ((q, x), y) in queries.iter().zip(&a).zip(&b) {
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "{ctx}: {q} value");
                assert_eq!(
                    x.variance.to_bits(),
                    y.variance.to_bits(),
                    "{ctx}: {q} variance"
                );
                assert_eq!(x.lower.to_bits(), y.lower.to_bits(), "{ctx}: {q} lower");
                assert_eq!(x.upper.to_bits(), y.upper.to_bits(), "{ctx}: {q} upper");
                assert_eq!(
                    x.confidence.to_bits(),
                    y.confidence.to_bits(),
                    "{ctx}: {q} confidence"
                );
            }
            // The single-answer path routes through the same batch loop.
            for q in &queries {
                let x = owned.answer(q, confidence).unwrap();
                let y = seg.answer(q, confidence).unwrap();
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "{ctx}: {q} single");
            }
        }
        assert_eq!(seg.kind(), owned.kind(), "{ctx}");
        assert_eq!(seg.dims(), owned.dims(), "{ctx}");
        assert_eq!(seg.item_count(), owned.item_count(), "{ctx}");
        assert_eq!(
            seg.total_estimate().to_bits(),
            owned.total_estimate().to_bits(),
            "{ctx}"
        );
        assert_eq!(
            Summary::tau(seg).unwrap().to_bits(),
            Summary::tau(owned).unwrap().to_bits(),
            "{ctx}"
        );
    }

    #[test]
    fn view_matches_decoded_sample_across_seeds() {
        // 120 seeds, alternating 1-D and 2-D: the view path must reproduce
        // the v1-decoded answers bit for bit.
        for seed in 0..120u64 {
            let owned = sample_fixture(seed, seed % 2 == 1);
            let seg = SegmentSummary::from_vec(encode_segment(&owned).unwrap()).unwrap();
            // Answer against a *decoded* copy, exactly as the acceptance
            // bar is phrased: view vs v1 decode.
            let decoded = decode_summary(&encode_summary(&owned)).unwrap();
            assert_estimates_bit_identical(decoded.as_ref(), &seg, &format!("sample seed {seed}"));
        }
    }

    #[test]
    fn view_matches_decoded_varopt_across_seeds() {
        for seed in 0..120u64 {
            let owned = varopt_fixture(seed);
            let seg = SegmentSummary::from_vec(encode_segment(&owned).unwrap()).unwrap();
            let decoded = decode_summary(&encode_summary(&owned)).unwrap();
            assert_estimates_bit_identical(decoded.as_ref(), &seg, &format!("varopt seed {seed}"));
        }
    }

    #[test]
    fn hydrate_reproduces_v1_bytes() {
        for seed in [3u64, 4] {
            let sample = sample_fixture(seed, seed % 2 == 0);
            let seg = SegmentSummary::from_vec(encode_segment(&sample).unwrap()).unwrap();
            assert_eq!(
                encode_summary(seg.hydrate().as_ref()),
                encode_summary(&sample)
            );
            let varopt = varopt_fixture(seed);
            let seg = SegmentSummary::from_vec(encode_segment(&varopt).unwrap()).unwrap();
            assert_eq!(
                encode_summary(seg.hydrate().as_ref()),
                encode_summary(&varopt)
            );
        }
    }

    #[test]
    fn encode_body_matches_hydrated_frame() {
        let sample = sample_fixture(9, true);
        let seg = SegmentSummary::from_vec(encode_segment(&sample).unwrap()).unwrap();
        assert_eq!(encode_summary(&seg), encode_summary(&sample));
    }

    #[test]
    fn empty_sample_segment_answers_exact_zero() {
        let owned = StoredSample::one_dim(sas_core::estimate::Sample::from_entries(vec![], 0.0));
        let seg = SegmentSummary::from_vec(encode_segment(&owned).unwrap()).unwrap();
        assert_eq!(seg.item_count(), 0);
        let e = seg.answer(&Query::Total, 0.9).unwrap();
        assert_eq!(e.value, 0.0);
        assert_eq!(e.confidence, 1.0);
    }

    #[test]
    fn merge_requires_hydration() {
        let owned = sample_fixture(1, false);
        let mut seg: Box<dyn Summary> =
            Box::new(SegmentSummary::from_vec(encode_segment(&owned).unwrap()).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(seg
            .merge_in_place(Box::new(sample_fixture(2, false)), None, &mut rng)
            .is_err());
        // Hydrating first makes the same merge succeed.
        let hydrated = seg
            .as_any()
            .downcast_ref::<SegmentSummary>()
            .unwrap()
            .hydrate();
        let mut hydrated = hydrated;
        assert!(hydrated
            .merge_in_place(Box::new(sample_fixture(2, false)), None, &mut rng)
            .is_ok());
    }

    #[test]
    fn deterministic_kinds_have_no_segment_layout() {
        let data = {
            let rows: Vec<(u64, u64, f64)> = (0..50).map(|k| (k % 16, (k * 3) % 16, 1.0)).collect();
            sas_sampling::product::SpatialData::from_xyw(&rows)
        };
        let qd = crate::qdigest::QDigestSummary::build(&data, 4, 40);
        assert!(encode_segment(&qd).is_none());
        // And a hand-forged segment claiming a deterministic kind is
        // rejected at open.
        let bytes = SegmentBuilder::new(SummaryKind::QDigest.tag()).finish();
        assert!(SegmentSummary::from_vec(bytes).is_err());
        let bytes = SegmentBuilder::new(999).finish();
        assert!(matches!(
            SegmentSummary::from_vec(bytes).unwrap_err(),
            CodecError::UnknownKind(999)
        ));
    }

    #[test]
    fn forged_sample_segments_are_rejected() {
        let n = |b: SegmentBuilder| SegmentSummary::from_vec(b.finish());
        // dims out of range.
        let mut b = SegmentBuilder::new(1);
        b.column_u64(COL_SAMPLE_META, [3, 1.0f64.to_bits()]);
        for id in [
            COL_SAMPLE_KEYS,
            COL_SAMPLE_WEIGHTS,
            COL_SAMPLE_ADJUSTED,
            COL_SAMPLE_XS,
            COL_SAMPLE_YS,
        ] {
            b.column_u64(id, []);
        }
        assert!(n(b).is_err());
        // Negative threshold.
        let mut b = SegmentBuilder::new(1);
        b.column_u64(COL_SAMPLE_META, [1, (-1.0f64).to_bits()]);
        for id in [
            COL_SAMPLE_KEYS,
            COL_SAMPLE_WEIGHTS,
            COL_SAMPLE_ADJUSTED,
            COL_SAMPLE_XS,
            COL_SAMPLE_YS,
        ] {
            b.column_u64(id, []);
        }
        assert!(n(b).is_err());
        // Column counts disagree.
        let mut b = SegmentBuilder::new(1);
        b.column_u64(COL_SAMPLE_META, [1, 1.0f64.to_bits()]);
        b.column_u64(COL_SAMPLE_KEYS, [1, 2]);
        b.column_f64(COL_SAMPLE_WEIGHTS, [1.0]);
        b.column_f64(COL_SAMPLE_ADJUSTED, [1.0, 1.0]);
        b.column_u64(COL_SAMPLE_XS, []);
        b.column_u64(COL_SAMPLE_YS, []);
        assert!(n(b).is_err());
        // NaN weight.
        let mut b = SegmentBuilder::new(1);
        b.column_u64(COL_SAMPLE_META, [1, 1.0f64.to_bits()]);
        b.column_u64(COL_SAMPLE_KEYS, [1]);
        b.column_f64(COL_SAMPLE_WEIGHTS, [f64::NAN]);
        b.column_f64(COL_SAMPLE_ADJUSTED, [1.0]);
        b.column_u64(COL_SAMPLE_XS, []);
        b.column_u64(COL_SAMPLE_YS, []);
        assert!(n(b).is_err());
        // Locations for a 1-D sample.
        let mut b = SegmentBuilder::new(1);
        b.column_u64(COL_SAMPLE_META, [1, 1.0f64.to_bits()]);
        b.column_u64(COL_SAMPLE_KEYS, [1]);
        b.column_f64(COL_SAMPLE_WEIGHTS, [1.0]);
        b.column_f64(COL_SAMPLE_ADJUSTED, [1.0]);
        b.column_u64(COL_SAMPLE_XS, [4]);
        b.column_u64(COL_SAMPLE_YS, [5]);
        assert!(n(b).is_err());
        // Missing column.
        let mut b = SegmentBuilder::new(1);
        b.column_u64(COL_SAMPLE_META, [1, 1.0f64.to_bits()]);
        b.column_u64(COL_SAMPLE_KEYS, []);
        assert!(n(b).is_err());
        // Meta too short.
        let mut b = SegmentBuilder::new(1);
        b.column_u64(COL_SAMPLE_META, [1]);
        assert!(n(b).is_err());
    }

    #[test]
    fn forged_varopt_segments_are_rejected() {
        let meta =
            |cap: u64, tau: f64, count: u64, tw: f64| [cap, tau.to_bits(), count, tw.to_bits()];
        // Held keys beyond capacity.
        let mut b = SegmentBuilder::new(2);
        b.column_u64(COL_VAROPT_META, meta(1, 1.0, 5, 10.0));
        b.column_u64(COL_VAROPT_LARGE_KEYS, [1, 2]);
        b.column_f64(COL_VAROPT_LARGE_WEIGHTS, [2.0, 3.0]);
        b.column_u64(COL_VAROPT_SMALL_KEYS, []);
        assert!(SegmentSummary::from_vec(b.finish()).is_err());
        // Large weight below the threshold.
        let mut b = SegmentBuilder::new(2);
        b.column_u64(COL_VAROPT_META, meta(8, 2.0, 2, 10.0));
        b.column_u64(COL_VAROPT_LARGE_KEYS, [1]);
        b.column_f64(COL_VAROPT_LARGE_WEIGHTS, [0.5]);
        b.column_u64(COL_VAROPT_SMALL_KEYS, []);
        assert!(SegmentSummary::from_vec(b.finish()).is_err());
        // Heap order violated.
        let mut b = SegmentBuilder::new(2);
        b.column_u64(COL_VAROPT_META, meta(8, 1.0, 3, 30.0));
        b.column_u64(COL_VAROPT_LARGE_KEYS, [1, 2, 3]);
        b.column_f64(COL_VAROPT_LARGE_WEIGHTS, [9.0, 2.0, 3.0]);
        b.column_u64(COL_VAROPT_SMALL_KEYS, []);
        assert!(SegmentSummary::from_vec(b.finish()).is_err());
        // Mismatched large columns.
        let mut b = SegmentBuilder::new(2);
        b.column_u64(COL_VAROPT_META, meta(8, 1.0, 2, 10.0));
        b.column_u64(COL_VAROPT_LARGE_KEYS, [1, 2]);
        b.column_f64(COL_VAROPT_LARGE_WEIGHTS, [2.0]);
        b.column_u64(COL_VAROPT_SMALL_KEYS, []);
        assert!(SegmentSummary::from_vec(b.finish()).is_err());
    }

    #[test]
    fn clone_is_cheap_and_shares_bytes() {
        let owned = sample_fixture(5, false);
        let seg = SegmentSummary::from_vec(encode_segment(&owned).unwrap()).unwrap();
        let clone = seg.clone_box();
        assert_eq!(clone.item_count(), seg.item_count());
        let q = Query::interval(0, 120);
        assert_eq!(
            clone.answer(&q, 0.9).unwrap().value.to_bits(),
            seg.answer(&q, 0.9).unwrap().value.to_bits()
        );
    }
}
