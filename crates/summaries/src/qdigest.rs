//! Two-dimensional q-digest / adaptive spatial partitioning — the
//! "Qdigest" baseline of Section 6.
//!
//! The summary is a set of materialized dyadic grid cells (products of
//! equal-level dyadic intervals), built bottom-up from the data in the
//! classic q-digest style [Shrivastava et al., SenSys 2004] generalized to
//! two dimensions per [Hershberger et al., ISAAC 2004]: a cell whose own
//! weight plus its sibling group's weight falls below the compression
//! threshold `W/k` is merged into its parent. The threshold doubles until
//! the materialized node count fits the size budget.
//!
//! Queries sum materialized cells: a cell fully inside the query
//! contributes its whole weight; a partially overlapped cell contributes
//! proportionally to the overlapped fraction of its area (the uniform-
//! spread assumption — the source of the method's error).

use std::collections::HashMap;

use sas_core::Mergeable;
use sas_sampling::product::SpatialData;
use sas_structures::product::BoxRange;

use crate::RangeSumSummary;

/// A dyadic grid cell: level (side `2^level`) and cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Cell {
    level: u32,
    ix: u64,
    iy: u64,
}

impl Cell {
    fn parent(self) -> Cell {
        Cell {
            level: self.level + 1,
            ix: self.ix >> 1,
            iy: self.iy >> 1,
        }
    }

    fn to_box(self) -> BoxRange {
        let side = 1u64 << self.level;
        BoxRange::xy(
            self.ix * side,
            self.ix * side + side - 1,
            self.iy * side,
            self.iy * side + side - 1,
        )
    }
}

/// The 2-D q-digest summary.
#[derive(Debug, Clone)]
pub struct QDigestSummary {
    nodes: Vec<(Cell, f64)>,
    /// The compression threshold the build converged at.
    threshold: f64,
}

impl QDigestSummary {
    /// Builds a q-digest over a square `2^bits × 2^bits` domain with a node
    /// budget of `s` materialized cells.
    ///
    /// # Panics
    /// Panics if any point lies outside the domain.
    pub fn build(data: &SpatialData, bits: u32, s: usize) -> Self {
        assert!(s > 0, "size budget must be positive");
        // Leaf cells: aggregate co-located points.
        let mut leaves: HashMap<(u64, u64), f64> = HashMap::new();
        let mut total = 0.0;
        for (wk, p) in data.keys.iter().zip(&data.points) {
            if wk.weight == 0.0 {
                continue;
            }
            let (x, y) = (p.coord(0), p.coord(1));
            if bits < 32 {
                assert!(
                    x < (1u64 << bits) && y < (1u64 << bits),
                    "point ({x},{y}) outside 2^{bits} domain"
                );
            }
            *leaves.entry((x, y)).or_insert(0.0) += wk.weight;
            total += wk.weight;
        }
        if leaves.is_empty() {
            return Self {
                nodes: Vec::new(),
                threshold: 0.0,
            };
        }

        let mut threshold = total / s as f64;
        loop {
            let mut nodes = Self::compress(&leaves, bits, threshold);
            if nodes.len() <= s {
                Self::canonicalize(&mut nodes);
                return Self { nodes, threshold };
            }
            threshold *= 2.0;
        }
    }

    /// Sorts nodes into the canonical (level, ix, iy) order. The compress
    /// and merge passes go through hash maps whose iteration order varies
    /// run to run; canonical order makes builds, merges, estimate sums, and
    /// encodings byte-for-byte deterministic.
    fn canonicalize(nodes: &mut [(Cell, f64)]) {
        nodes.sort_unstable_by_key(|(c, _)| (c.level, c.ix, c.iy));
    }

    /// One bottom-up compression pass at a fixed threshold: cells whose
    /// sibling group (the 4 children of one parent) weighs below the
    /// threshold are merged upward, level by level.
    fn compress(leaves: &HashMap<(u64, u64), f64>, bits: u32, threshold: f64) -> Vec<(Cell, f64)> {
        let mut materialized: Vec<(Cell, f64)> = Vec::new();
        let mut current: HashMap<Cell, f64> = leaves
            .iter()
            .map(|(&(x, y), &w)| {
                (
                    Cell {
                        level: 0,
                        ix: x,
                        iy: y,
                    },
                    w,
                )
            })
            .collect();
        for _level in 0..bits {
            // Group by parent.
            let mut by_parent: HashMap<Cell, (f64, Vec<(Cell, f64)>)> = HashMap::new();
            for (cell, w) in current.drain() {
                let e = by_parent.entry(cell.parent()).or_insert((0.0, Vec::new()));
                e.0 += w;
                e.1.push((cell, w));
            }
            for (parent, (group_w, members)) in by_parent {
                if group_w < threshold {
                    // Merge the whole sibling group into the parent.
                    current.insert(parent, group_w);
                } else {
                    // Keep the heavy children; the parent continues upward
                    // with zero weight of its own (children carry it all).
                    for (cell, w) in members {
                        if w >= threshold / 4.0 {
                            materialized.push((cell, w));
                        } else {
                            // Light member of a heavy group: push its weight
                            // to the parent to avoid many tiny nodes.
                            *current.entry(parent).or_insert(0.0) += w;
                        }
                    }
                }
            }
        }
        // Whatever reached the top level is materialized there.
        for (cell, w) in current {
            if w > 0.0 {
                materialized.push((cell, w));
            }
        }
        materialized
    }

    /// The compression threshold used by the final build pass.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Writes the wire representation (see `sas-codec` for the framing).
    pub(crate) fn write_wire(&self, w: &mut sas_codec::Writer) {
        w.section(1, |w| w.put_f64(self.threshold));
        w.section(2, |w| {
            w.put_u64(self.nodes.len() as u64);
            for (cell, weight) in &self.nodes {
                w.put_u32(cell.level);
                w.put_u64(cell.ix);
                w.put_u64(cell.iy);
                w.put_f64(*weight);
            }
        });
    }

    /// Reads the wire representation, validating every invariant a
    /// corrupted file could violate (never panics).
    pub(crate) fn read_wire(r: &mut sas_codec::Reader<'_>) -> Result<Self, sas_codec::CodecError> {
        use sas_codec::CodecError;
        let mut meta = r.expect_section(1)?;
        let threshold = meta.get_finite_f64()?;
        if threshold < 0.0 {
            return Err(CodecError::Invalid(format!(
                "negative threshold {threshold}"
            )));
        }
        meta.finish()?;
        let mut body = r.expect_section(2)?;
        let n = body.get_len(28)?; // u32 + 2×u64 + f64 per node
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let level = body.get_u32()?;
            let ix = body.get_u64()?;
            let iy = body.get_u64()?;
            let weight = body.get_finite_f64()?;
            if weight < 0.0 {
                return Err(CodecError::Invalid(format!(
                    "negative node weight {weight}"
                )));
            }
            if level >= 64 {
                return Err(CodecError::Invalid(format!("cell level {level} too deep")));
            }
            // The cell's box must fit in u64: (i + 1) · 2^level − 1 ≤ u64::MAX.
            let side = 1u64 << level;
            for i in [ix, iy] {
                if i.checked_add(1).and_then(|v| v.checked_mul(side)).is_none() {
                    return Err(CodecError::Invalid(format!(
                        "cell ({level}, {ix}, {iy}) overflows the domain"
                    )));
                }
            }
            nodes.push((Cell { level, ix, iy }, weight));
        }
        body.finish()?;
        Ok(Self { nodes, threshold })
    }

    /// Total weight stored (equals the data total).
    pub fn stored_total(&self) -> f64 {
        self.nodes.iter().map(|(_, w)| w).sum()
    }

    /// Deterministic containment bounds on the exact answer inside `query`.
    ///
    /// Every data point aggregated into a cell lies inside that cell, so
    /// the exact answer is at least the weight of the cells fully covered
    /// by the query and at most the weight of the cells it intersects at
    /// all. The proportional estimate of
    /// [`estimate_box`](RangeSumSummary::estimate_box) always lies inside
    /// the same interval.
    pub fn bound_box(&self, query: &BoxRange) -> (f64, f64) {
        if query.is_empty() {
            return (0.0, 0.0);
        }
        let mut lower = 0.0;
        let mut upper = 0.0;
        for (cell, w) in &self.nodes {
            let b = cell.to_box();
            if query.covers(&b) {
                lower += w;
                upper += w;
            } else if query.overlaps(&b) {
                upper += w;
            }
        }
        (lower, upper)
    }
}

/// Q-digests over disjoint data merge by cell-wise weight addition: the
/// union of the two node sets, with coinciding cells combined. Queries over
/// the merged digest are exactly the sum of the two inputs' answers, so the
/// deterministic error guarantees add. The node count can grow up to the sum
/// of the inputs'; rebuild from data (or raise the threshold) to recompress.
impl Mergeable for QDigestSummary {
    fn merge_with<R: rand::Rng + ?Sized>(&mut self, other: Self, _rng: &mut R) {
        let mut by_cell: HashMap<Cell, f64> = self.nodes.drain(..).collect();
        for (cell, w) in other.nodes {
            *by_cell.entry(cell).or_insert(0.0) += w;
        }
        self.nodes = by_cell.into_iter().collect();
        Self::canonicalize(&mut self.nodes);
        self.threshold = self.threshold.max(other.threshold);
    }
}

impl RangeSumSummary for QDigestSummary {
    fn estimate_box(&self, query: &BoxRange) -> f64 {
        if query.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|(cell, w)| {
                let b = cell.to_box();
                if query.covers(&b) {
                    *w
                } else {
                    let inter = query.intersect(&b);
                    if inter.is_empty() {
                        0.0
                    } else {
                        w * inter.volume() as f64 / b.volume() as f64
                    }
                }
            })
            .sum()
    }

    fn size_elements(&self) -> usize {
        self.nodes.len()
    }

    fn name(&self) -> &'static str {
        "qdigest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, bits: u32, seed: u64) -> SpatialData {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 1u64 << bits;
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..side),
                    rng.gen_range(0..side),
                    rng.gen_range(0.5..5.0),
                )
            })
            .collect();
        SpatialData::from_xyw(&rows)
    }

    #[test]
    fn weight_is_conserved() {
        let data = random_data(300, 6, 1);
        let q = QDigestSummary::build(&data, 6, 50);
        assert!(
            (q.stored_total() - data.total_weight()).abs() < 1e-6,
            "{} vs {}",
            q.stored_total(),
            data.total_weight()
        );
    }

    #[test]
    fn respects_size_budget() {
        let data = random_data(500, 8, 2);
        for s in [10, 50, 200] {
            let q = QDigestSummary::build(&data, 8, s);
            assert!(q.size_elements() <= s, "budget {s}: {}", q.size_elements());
        }
    }

    #[test]
    fn full_domain_query_is_exact() {
        let data = random_data(200, 6, 3);
        let q = QDigestSummary::build(&data, 6, 30);
        let full = BoxRange::xy(0, 63, 0, 63);
        assert!((q.estimate_box(&full) - data.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn large_budget_gives_exact_answers() {
        let data = random_data(50, 5, 4);
        // Budget larger than distinct points: leaves survive compression.
        let q = QDigestSummary::build(&data, 5, 5000);
        let exact = crate::exact::ExactEngine::new(&data);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let x0 = rng.gen_range(0..32);
            let x1 = rng.gen_range(x0..32);
            let y0 = rng.gen_range(0..32);
            let y1 = rng.gen_range(y0..32);
            let qu = BoxRange::xy(x0, x1, y0, y1);
            let est = q.estimate_box(&qu);
            let truth = exact.box_sum(&qu);
            assert!(
                (est - truth).abs() < 1e-6 * (1.0 + truth),
                "{qu:?}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn error_bounded_by_threshold_heuristic() {
        // With budget s, per-query error should be well below total weight.
        let data = random_data(1000, 8, 6);
        let q = QDigestSummary::build(&data, 8, 100);
        let exact = crate::exact::ExactEngine::new(&data);
        let total = data.total_weight();
        let mut rng = StdRng::seed_from_u64(7);
        let mut worst: f64 = 0.0;
        for _ in 0..50 {
            let x0 = rng.gen_range(0..200);
            let x1 = (x0 + rng.gen_range(1..56)).min(255);
            let y0 = rng.gen_range(0..200);
            let y1 = (y0 + rng.gen_range(1..56)).min(255);
            let qu = BoxRange::xy(x0, x1, y0, y1);
            worst = worst.max((q.estimate_box(&qu) - exact.box_sum(&qu)).abs());
        }
        assert!(worst < 0.5 * total, "worst error {worst} vs total {total}");
    }

    #[test]
    fn empty_data() {
        let data = SpatialData::from_xyw(&[]);
        let q = QDigestSummary::build(&data, 4, 10);
        assert_eq!(q.size_elements(), 0);
        assert_eq!(q.estimate_box(&BoxRange::xy(0, 15, 0, 15)), 0.0);
    }

    #[test]
    fn containment_bounds_bracket_estimate_and_exact() {
        let data = random_data(400, 6, 9);
        let q = QDigestSummary::build(&data, 6, 40);
        let exact = crate::exact::ExactEngine::new(&data);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..60 {
            let x0 = rng.gen_range(0..60);
            let x1 = rng.gen_range(x0..64);
            let y0 = rng.gen_range(0..60);
            let y1 = rng.gen_range(y0..64);
            let b = BoxRange::xy(x0, x1, y0, y1);
            let (lo, hi) = q.bound_box(&b);
            let est = q.estimate_box(&b);
            let truth = exact.box_sum(&b);
            assert!(lo <= hi, "{b:?}");
            assert!(
                lo <= est + 1e-9 && est <= hi + 1e-9,
                "{b:?}: est {est} outside [{lo}, {hi}]"
            );
            assert!(
                lo <= truth + 1e-9 && truth <= hi + 1e-9,
                "{b:?}: truth {truth} outside [{lo}, {hi}]"
            );
        }
        // Full domain: both ends collapse onto the exact total.
        let full = BoxRange::xy(0, 63, 0, 63);
        let (lo, hi) = q.bound_box(&full);
        assert!((lo - data.total_weight()).abs() < 1e-6);
        assert!((hi - data.total_weight()).abs() < 1e-6);
        // Empty query: zero bounds.
        assert_eq!(q.bound_box(&BoxRange::xy(5, 4, 0, 63)), (0.0, 0.0));
    }

    #[test]
    fn merged_digest_preserves_total_and_adds_estimates() {
        let mut rng = StdRng::seed_from_u64(15);
        let all = random_data(600, 8, 11);
        let rows: Vec<(u64, u64, f64)> = all
            .keys
            .iter()
            .zip(&all.points)
            .map(|(wk, p)| (p.coord(0), p.coord(1), wk.weight))
            .collect();
        let (first, second) = rows.split_at(300);
        let mut a = QDigestSummary::build(&SpatialData::from_xyw(first), 8, 80);
        let b = QDigestSummary::build(&SpatialData::from_xyw(second), 8, 80);
        let (est_a, est_b, tot_a, tot_b) = {
            let q = BoxRange::xy(0, 127, 0, 127);
            (
                a.estimate_box(&q),
                b.estimate_box(&q),
                a.stored_total(),
                b.stored_total(),
            )
        };
        a.merge_with(b, &mut rng);
        assert!((a.stored_total() - (tot_a + tot_b)).abs() < 1e-9);
        let q = BoxRange::xy(0, 127, 0, 127);
        assert!((a.estimate_box(&q) - (est_a + est_b)).abs() < 1e-9);
        assert!(a.size_elements() <= 160);
    }
}
