//! # sas-summaries — baseline range-sum summaries
//!
//! The dedicated summaries the paper compares structure-aware sampling
//! against (Section 6 "Methods"):
//!
//! * [`wavelet`] — the standard (tensor-product) two-dimensional Haar
//!   wavelet transform with coefficient thresholding [Vitter–Wang–Iyer]:
//!   each input point touches `(log X + 1)(log Y + 1)` coefficients; the
//!   `s` largest normalized coefficients are retained.
//! * [`qdigest`] — a two-dimensional q-digest / adaptive spatial
//!   partitioning summary [Shrivastava et al.; Hershberger et al.]: a
//!   deterministic dyadic-grid compression keeping heavy cells.
//! * [`countsketch`] — Count-sketch [Charikar–Chen–Farach-Colton] over
//!   dyadic rectangles: one sketch per dyadic level pair, queried through
//!   the canonical rectangle decomposition.
//! * [`exact`] — scan-based exact range sums, the ground truth used by the
//!   experiment harness.
//!
//! All summaries implement [`RangeSumSummary`], reporting their size in
//! *elements* (comparable to sample keys, as in the paper's plots) and
//! answering axis-parallel box queries. The q-digest and count-sketch also
//! implement `sas_core::Mergeable` — per-shard summaries built over disjoint
//! data combine by node/counter addition, mirroring the mergeable VarOpt
//! samples of `sas-sampling::sharded`.

//!
//! The [`erased`] module adds the durability layer: the object-safe
//! [`Summary`] trait (build metadata, queries, type-erased merge,
//! encode/decode onto the `sas-codec` wire format) and the [`SummaryKind`]
//! registry, so VarOpt reservoirs, finished samples ([`stored`]), q-digests,
//! wavelets, and count-sketches can be saved, merged, and queried across
//! process boundaries.
//!
//! The [`query`] module is the unified estimation API on top: every
//! question is a [`Query`] (box, disjoint multi-range, point, hierarchy
//! node, total) and every answer an [`Estimate`] — value, variance, and a
//! confidence interval derived per kind (Chernoff inversion for samples,
//! deterministic containment/truncation bounds for q-digest/wavelet, row
//! spread for sketches). [`QueryBatch`] evaluates many queries in one pass
//! over a summary's items.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod countsketch;
pub mod erased;
pub mod exact;
pub mod qdigest;
pub mod qdigest1d;
pub mod query;
pub mod stored;
pub mod view;
pub mod wavelet;
pub mod wavelet1d;

pub use erased::{
    decode_summaries, decode_summary, encode_summary, merge_tree, merge_tree_with, Summary,
    SummaryError, SummaryKind,
};
pub use query::{Estimate, Query, QueryBatch, QueryError};
pub use sas_sampling::sharded::MergeArena;
pub use stored::StoredSample;
pub use view::{encode_segment, SegmentSummary};

use sas_structures::product::{BoxRange, MultiRangeQuery};

/// Common interface of every range-sum summary in this crate (and of
/// sample-based summaries via [`exact::SampleSummary`]).
pub trait RangeSumSummary {
    /// Estimated total weight inside the box.
    fn estimate_box(&self, query: &BoxRange) -> f64;

    /// Number of stored elements (keys / coefficients / nodes / counters) —
    /// the size measure used on the x-axis of the paper's plots.
    fn size_elements(&self) -> usize;

    /// Short name for reports ("aware", "obliv", "wavelet", …).
    fn name(&self) -> &'static str;

    /// Estimated weight of a multi-range query (sum over disjoint boxes).
    fn estimate_multi(&self, query: &MultiRangeQuery) -> f64 {
        query.boxes.iter().map(|b| self.estimate_box(b)).sum()
    }
}
