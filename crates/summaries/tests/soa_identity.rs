//! Properties pinning the column-oriented (SoA) `StoredSample` layout and
//! the arena-backed merge path to the historical behavior: identical query
//! values against an array-of-structs reference evaluation, identical
//! encodings, bit-identical merge trees for any arena state, and
//! `range_sum ≡ answer().value` for every registered kind.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sas_core::varopt::VarOptSampler;
use sas_core::WeightedKey;
use sas_sampling::product::SpatialData;
use sas_structures::product::{BoxRange, Point};
use sas_summaries::countsketch::SketchSummary;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::{
    decode_summary, encode_summary, merge_tree, merge_tree_with, MergeArena, Query,
    RangeSumSummary, StoredSample, Summary,
};

fn keys_strategy() -> impl Strategy<Value = Vec<WeightedKey>> {
    prop::collection::vec((0u64..5000, 0.1f64..50.0), 1..120).prop_map(|pairs| {
        // Deduplicate by key (last weight wins) — samplers expect the
        // aggregated form, one row per key.
        let m: std::collections::BTreeMap<u64, f64> = pairs.into_iter().collect();
        m.into_iter().map(|(k, w)| WeightedKey::new(k, w)).collect()
    })
}

fn intervals_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..5000, 0u64..5000), 1..10)
        .prop_map(|v| v.into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect())
}

fn rows_strategy() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0u64..256, 0u64..256, 0.1f64..50.0), 1..120)
}

/// Checks a batch answer against per-query answers, bit for bit.
fn assert_batch_matches_loop(s: &dyn Summary, queries: &[Query]) {
    let batch = s.answer_batch(queries, 0.95).unwrap();
    assert_eq!(batch.len(), queries.len());
    for (q, b) in queries.iter().zip(&batch) {
        let one = s.answer(q, 0.95).unwrap();
        assert_eq!(one.value.to_bits(), b.value.to_bits(), "{q}");
        assert_eq!(one.lower.to_bits(), b.lower.to_bits(), "{q}");
        assert_eq!(one.upper.to_bits(), b.upper.to_bits(), "{q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The 1-D column layout is observationally identical to evaluating
    /// the sample entries the old array-of-structs way, and the encoding
    /// round-trips byte-identically.
    #[test]
    fn soa_sample_1d_matches_aos_reference(
        data in keys_strategy(),
        ranges in intervals_strategy(),
        budget in 1usize..80,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stored = StoredSample::one_dim(sas_sampling::order::sample(&data, budget, &mut rng));
        // Reference: walk the entries in order, as the old layout did.
        let aos = stored.to_sample();
        for &(lo, hi) in &ranges {
            // Fold from +0.0 like the query accumulator (`Iterator::sum`
            // would yield -0.0 on ranges matching nothing).
            let reference: f64 = aos
                .iter()
                .filter(|e| lo <= e.key && e.key <= hi)
                .fold(0.0, |acc, e| acc + e.adjusted_weight);
            let est = stored.answer(&Query::BoxRange(vec![(lo, hi)]), 0.95).unwrap();
            prop_assert_eq!(est.value.to_bits(), reference.to_bits(), "lo={lo} hi={hi}");
            prop_assert_eq!(Summary::range_sum(&stored, &[(lo, hi)]).to_bits(), reference.to_bits());
            prop_assert_eq!(StoredSample::range_sum(&stored, &[(lo, hi)]).to_bits(), reference.to_bits());
        }
        let queries: Vec<Query> = ranges.iter().map(|&r| Query::BoxRange(vec![r])).collect();
        assert_batch_matches_loop(&stored, &queries);
        let bytes = encode_summary(&stored);
        let decoded = decode_summary(&bytes).unwrap();
        prop_assert_eq!(bytes, encode_summary(decoded.as_ref()));
    }

    /// The 2-D coordinate columns are observationally identical to the old
    /// per-key location-map lookups.
    #[test]
    fn soa_sample_2d_matches_aos_reference(
        rows in rows_strategy(),
        boxes in prop::collection::vec((0u64..256, 0u64..256, 0u64..256, 0u64..256), 1..10),
        budget in 1usize..80,
        seed in 0u64..1000,
    ) {
        let keys: Vec<WeightedKey> = rows
            .iter()
            .enumerate()
            .map(|(i, &(_, _, w))| WeightedKey::new(i as u64, w))
            .collect();
        let points: HashMap<u64, Point> = rows
            .iter()
            .enumerate()
            .map(|(i, &(x, y, _))| (i as u64, Point::xy(x, y)))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = sas_sampling::order::sample(&keys, budget, &mut rng);
        let stored = StoredSample::two_dim(sample, points.clone()).unwrap();
        let aos = stored.to_sample();
        let mut queries = Vec::new();
        for &(a, b, c, d) in &boxes {
            let (x0, x1, y0, y1) = (a.min(b), a.max(b), c.min(d), c.max(d));
            let reference: f64 = aos
                .iter()
                .filter(|e| {
                    let p = &points[&e.key];
                    x0 <= p.coord(0) && p.coord(0) <= x1 && y0 <= p.coord(1) && p.coord(1) <= y1
                })
                .fold(0.0, |acc, e| acc + e.adjusted_weight);
            let range = [(x0, x1), (y0, y1)];
            let est = stored.answer(&Query::BoxRange(range.to_vec()), 0.95).unwrap();
            prop_assert_eq!(est.value.to_bits(), reference.to_bits());
            prop_assert_eq!(Summary::range_sum(&stored, &range).to_bits(), reference.to_bits());
            prop_assert_eq!(StoredSample::range_sum(&stored, &range).to_bits(), reference.to_bits());
            queries.push(Query::BoxRange(range.to_vec()));
        }
        assert_batch_matches_loop(&stored, &queries);
        let bytes = encode_summary(&stored);
        let decoded = decode_summary(&bytes).unwrap();
        prop_assert_eq!(bytes, encode_summary(decoded.as_ref()));
    }

    /// With the per-kind overrides gone, `range_sum` must still return the
    /// historical value-only fast-path results for every kind: it equals
    /// `answer().value` bit-for-bit (single source of truth), and for the
    /// kinds whose old override was an independent computation, it equals
    /// that computation replayed here.
    #[test]
    fn range_sum_is_answer_value_for_every_kind(
        data in keys_strategy(),
        rows in rows_strategy(),
        ranges in intervals_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let stored = StoredSample::one_dim(sas_sampling::order::sample(&data, 40, &mut rng));
        let mut varopt = VarOptSampler::new(30);
        for wk in &data {
            varopt.push(wk.key, wk.weight, &mut rng);
        }
        let spatial = SpatialData::from_xyw(&rows);
        let qdigest = QDigestSummary::build(&spatial, 8, 50);
        let wavelet = WaveletSummary::build(&spatial, 8, 8, 60);
        let sketch = SketchSummary::build(&spatial, 8, 8, 400, seed % 16);

        for &(lo, hi) in &ranges {
            // VarOpt: the old override's large/small scan (folded from
            // +0.0, like the batch accumulator).
            let tau = VarOptSampler::tau(&varopt);
            let large: f64 = varopt
                .large_entries()
                .filter(|&(k, _)| lo <= k && k <= hi)
                .fold(0.0, |acc, (_, w)| acc + w.max(tau));
            let small = varopt.small_keys().iter().filter(|&&k| lo <= k && k <= hi).count();
            let reference = large + small as f64 * tau;
            prop_assert_eq!(Summary::range_sum(&varopt, &[(lo, hi)]).to_bits(), reference.to_bits());

            // One-axis queries against every kind: shim == answer().value.
            let erased: [&dyn Summary; 5] = [&stored, &varopt, &qdigest, &wavelet, &sketch];
            for s in erased {
                let range = [(lo, hi)];
                let range = &range[..range.len().min(s.dims())];
                let expect = s.answer(&Query::BoxRange(range.to_vec()), 0.95).unwrap().value;
                prop_assert_eq!(s.range_sum(&[(lo, hi)]).to_bits(), expect.to_bits(), "{}", s.kind());
            }

            // Deterministic 2-D kinds: the old override's estimate_box
            // (`answer` folds the box values from +0.0, so normalize a
            // possible -0.0 the same way).
            let b = BoxRange::xy(lo.min(255), hi.min(255), 0, u64::MAX);
            let range2 = [(lo.min(255), hi.min(255)), (0, u64::MAX)];
            prop_assert_eq!(
                Summary::range_sum(&qdigest, &range2).to_bits(),
                (0.0 + qdigest.estimate_box(&b)).to_bits()
            );
            prop_assert_eq!(
                Summary::range_sum(&wavelet, &range2).to_bits(),
                (0.0 + wavelet.estimate_box(&b)).to_bits()
            );
            prop_assert_eq!(
                Summary::range_sum(&sketch, &range2).to_bits(),
                (0.0 + sketch.estimate_box(&b)).to_bits()
            );
        }
    }
}

fn shard_1d(seed: u64, shard: u64) -> Box<dyn Summary> {
    let rows: Vec<WeightedKey> = (0..60)
        .map(|i| WeightedKey::new(shard * 1000 + i, 1.0 + ((seed + i) % 9) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + shard);
    Box::new(StoredSample::one_dim(sas_sampling::order::sample(
        &rows, 40, &mut rng,
    )))
}

fn shard_2d(seed: u64, shard: u64) -> Box<dyn Summary> {
    let rows: Vec<WeightedKey> = (0..60)
        .map(|i| WeightedKey::new(shard * 1000 + i, 1.0 + ((seed + i) % 9) as f64))
        .collect();
    let points: HashMap<u64, Point> = rows
        .iter()
        .map(|wk| (wk.key, Point::xy(wk.key % 251, (wk.key / 3) % 241)))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + shard);
    let sample = sas_sampling::order::sample(&rows, 40, &mut rng);
    Box::new(StoredSample::two_dim(sample, points).unwrap())
}

/// One `MergeArena` threaded through 120 seeds' worth of merge trees —
/// dirty with every size of buffer the previous trees left behind — gives
/// the same bytes as a fresh arena per tree, for 1-D and 2-D samples.
#[test]
fn arena_merge_tree_is_bit_identical_across_seeds() {
    let mut arena = MergeArena::new();
    for seed in 0..120u64 {
        let build: fn(u64, u64) -> Box<dyn Summary> =
            if seed % 2 == 0 { shard_1d } else { shard_2d };
        let shards: Vec<Box<dyn Summary>> = (0..8).map(|s| build(seed, s)).collect();
        let shards2 = shards.clone();
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let fresh = merge_tree(shards, Some(30), &mut r1).unwrap();
        let reused = merge_tree_with(shards2, Some(30), &mut r2, &mut arena).unwrap();
        assert_eq!(
            encode_summary(fresh.as_ref()),
            encode_summary(reused.as_ref()),
            "seed {seed}: arena-backed merge tree must match the allocating one"
        );
    }
}
