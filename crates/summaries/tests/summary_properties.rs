//! Property tests for the baseline summaries: exactness at full budget and
//! conservation laws under compression.

use proptest::prelude::*;
use sas_sampling::product::SpatialData;
use sas_structures::product::BoxRange;
use sas_summaries::exact::ExactEngine;
use sas_summaries::qdigest::QDigestSummary;
use sas_summaries::wavelet::WaveletSummary;
use sas_summaries::RangeSumSummary;

const BITS: u32 = 5; // 32x32 domain keeps exhaustive checks cheap

fn data_strategy() -> impl Strategy<Value = SpatialData> {
    prop::collection::vec((0u64..32, 0u64..32, 0.1f64..10.0), 1..80)
        .prop_map(|rows| SpatialData::from_xyw(&rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wavelet_full_budget_is_exact(data in data_strategy(), x0 in 0u64..32, y0 in 0u64..32, dx in 0u64..32, dy in 0u64..32) {
        let w = WaveletSummary::build(&data, BITS, BITS, usize::MAX);
        let exact = ExactEngine::new(&data);
        let q = BoxRange::xy(x0, (x0 + dx).min(31), y0, (y0 + dy).min(31));
        let est = w.estimate_box(&q);
        let truth = exact.box_sum(&q);
        prop_assert!((est - truth).abs() < 1e-6 * (1.0 + truth),
            "query {:?}: {} vs {}", q, est, truth);
    }

    #[test]
    fn qdigest_conserves_weight(data in data_strategy(), budget in 1usize..200) {
        let q = QDigestSummary::build(&data, BITS, budget);
        let total = data.total_weight();
        prop_assert!((q.stored_total() - total).abs() < 1e-6 * (1.0 + total));
        prop_assert!(q.size_elements() <= budget);
        // Full-domain query returns the total.
        let full = BoxRange::xy(0, 31, 0, 31);
        prop_assert!((q.estimate_box(&full) - total).abs() < 1e-6 * (1.0 + total));
    }

    #[test]
    fn qdigest_estimates_within_total(data in data_strategy(), budget in 4usize..64, x0 in 0u64..32, dx in 0u64..32) {
        let q = QDigestSummary::build(&data, BITS, budget);
        let total = data.total_weight();
        let query = BoxRange::xy(x0, (x0 + dx).min(31), 0, 31);
        let est = q.estimate_box(&query);
        // Estimates are conservative: within [0, total].
        prop_assert!(est >= -1e-9 && est <= total + 1e-6);
    }

    #[test]
    fn wavelet_truncation_monotone_storage(data in data_strategy(), s in 1usize..50) {
        let full = WaveletSummary::build(&data, BITS, BITS, usize::MAX);
        let t = full.truncated(s);
        prop_assert!(t.size_elements() <= s);
        prop_assert!(t.size_elements() <= full.size_elements());
    }
}

#[test]
fn sketch_unbiased_over_seeds() {
    // Count-sketch point estimates are unbiased over hash seeds.
    use sas_summaries::countsketch::SketchSummary;
    let data = SpatialData::from_xyw(&[(3, 4, 100.0), (10, 20, 50.0), (31, 31, 25.0)]);
    let exact = ExactEngine::new(&data);
    let q = BoxRange::xy(3, 3, 4, 4);
    let truth = exact.box_sum(&q);
    let runs = 400;
    let mut acc = 0.0;
    for seed in 0..runs {
        let sk = SketchSummary::build(&data, BITS, BITS, 800, seed);
        acc += sk.estimate_box(&q);
    }
    let mean = acc / runs as f64;
    assert!(
        (mean - truth).abs() / truth < 0.15,
        "mean {mean} vs truth {truth}"
    );
}
