//! Property tests for the workload generators: every configuration must
//! produce well-formed data, and query batteries must be valid.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sas_data::queries::equal_weight_cells;
use sas_data::{uniform_area_queries, NetworkConfig, TicketConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn network_generator_well_formed(
        bits in 8u32..14,
        flows in 500usize..5000,
        theta in 0.5f64..1.5,
        alpha in 0.8f64..1.5,
        seed in 0u64..100,
    ) {
        let cfg = NetworkConfig {
            bits,
            flows,
            theta,
            alpha,
            src_prefixes: 50,
            dst_prefixes: 40,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let data = cfg.generate(&mut rng);
        prop_assert!(!data.is_empty());
        prop_assert!(data.len() <= flows);
        let side = 1u64 << bits;
        for (wk, p) in data.keys.iter().zip(&data.points) {
            prop_assert!(wk.weight > 0.0 && wk.weight.is_finite());
            prop_assert!(p.coord(0) < side && p.coord(1) < side);
        }
        // Keys are row indices, sorted points imply deterministic layout.
        for (i, wk) in data.keys.iter().enumerate() {
            prop_assert_eq!(wk.key, i as u64);
        }
    }

    #[test]
    fn ticket_generator_well_formed(
        tickets in 500usize..5000,
        theta in 0.5f64..1.4,
        seed in 0u64..100,
    ) {
        let cfg = TicketConfig {
            tickets,
            theta,
            ..Default::default()
        };
        let (td, ld) = cfg.domains();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = cfg.generate(&mut rng);
        prop_assert!(!data.is_empty());
        for (wk, p) in data.keys.iter().zip(&data.points) {
            prop_assert!(wk.weight > 0.0);
            prop_assert!(p.coord(0) < td && p.coord(1) < ld);
        }
    }

    #[test]
    fn uniform_area_queries_valid(
        count in 1usize..10,
        ranges in 1usize..15,
        frac in 0.01f64..0.9,
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 1u64 << 12;
        let qs = uniform_area_queries(&mut rng, side, side, count, ranges, frac);
        prop_assert_eq!(qs.len(), count);
        for q in &qs {
            prop_assert!(q.range_count() <= ranges);
            for (i, a) in q.boxes.iter().enumerate() {
                prop_assert!(!a.is_empty());
                for b in &q.boxes[i + 1..] {
                    prop_assert!(!a.overlaps(b), "overlapping ranges in query");
                }
            }
        }
    }

    #[test]
    fn equal_weight_cells_tile(
        n in 50usize..800,
        parts in 2usize..32,
        seed in 0u64..50,
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0..1024), rng.gen_range(0..1024), rng.gen_range(0.1f64..5.0)))
            .collect();
        let data = sas_sampling::product::SpatialData::from_xyw(&rows);
        let cells = equal_weight_cells(&data, parts);
        prop_assert!(!cells.is_empty());
        // Cells are pairwise disjoint and cover every data point once.
        for (wk, p) in data.keys.iter().zip(&data.points) {
            let covering = cells.iter().filter(|c| c.contains(p)).count();
            prop_assert_eq!(covering, 1, "key {} covered {} times", wk.key, covering);
        }
    }
}
