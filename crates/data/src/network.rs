//! Synthetic network-flow data: the paper's Network data set equivalent.
//!
//! Records are `(source, destination, bytes)` where addresses live in a
//! two-dimensional prefix hierarchy. Real flow data is clustered: most
//! traffic concentrates in a modest number of popular prefixes (subnets) at
//! mixed depths, with Zipf-like popularity, and flow sizes are heavy-tailed.
//! The generator reproduces exactly those properties, which are the only
//! ones range queries interact with.

use rand::Rng;

use sas_sampling::product::SpatialData;

use crate::dist::{bounded_pareto, Zipf};

/// Configuration of the network-flow generator.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Address bits per axis (paper: 32; benches default to 16 so the
    /// wavelet baseline finishes — see DESIGN.md substitutions).
    pub bits: u32,
    /// Number of popular source prefixes.
    pub src_prefixes: usize,
    /// Number of popular destination prefixes.
    pub dst_prefixes: usize,
    /// Number of flow records to draw (distinct pairs after aggregation is
    /// slightly lower, matching the paper's 196K pairs regime).
    pub flows: usize,
    /// Zipf exponent for prefix popularity.
    pub theta: f64,
    /// Pareto tail index for flow sizes (smaller = heavier tail).
    pub alpha: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            bits: 16,
            src_prefixes: 400,
            dst_prefixes: 300,
            flows: 196_000,
            theta: 1.0,
            alpha: 1.1,
        }
    }
}

/// A prefix: the high `depth` bits are fixed, hosts fill the rest.
#[derive(Debug, Clone, Copy)]
struct Prefix {
    base: u64,
    depth: u32,
}

impl Prefix {
    fn random<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Self {
        // Depth between bits/2 and bits-2: subnets of 4..2^(bits/2) hosts.
        let depth = rng.gen_range(bits / 2..=bits.saturating_sub(2).max(bits / 2));
        let base = rng.gen_range(0..(1u64 << depth)) << (bits - depth);
        Self { base, depth }
    }

    fn host<R: Rng + ?Sized>(&self, rng: &mut R, bits: u32) -> u64 {
        self.base | rng.gen_range(0..(1u64 << (bits - self.depth)))
    }
}

impl NetworkConfig {
    /// Generates the data set. Flows landing on the same `(src, dst)` pair
    /// aggregate their weights (as distinct IP pairs do in flow records).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SpatialData {
        assert!(self.bits >= 4 && self.bits <= 32, "bits out of range");
        let srcs: Vec<Prefix> = (0..self.src_prefixes)
            .map(|_| Prefix::random(rng, self.bits))
            .collect();
        let dsts: Vec<Prefix> = (0..self.dst_prefixes)
            .map(|_| Prefix::random(rng, self.bits))
            .collect();
        let src_pop = Zipf::new(srcs.len(), self.theta);
        let dst_pop = Zipf::new(dsts.len(), self.theta);

        let mut agg: std::collections::HashMap<(u64, u64), f64> =
            std::collections::HashMap::with_capacity(self.flows);
        for _ in 0..self.flows {
            let s = srcs[src_pop.sample(rng)].host(rng, self.bits);
            let d = dsts[dst_pop.sample(rng)].host(rng, self.bits);
            let bytes = bounded_pareto(rng, 1.0, 1e6, self.alpha);
            *agg.entry((s, d)).or_insert(0.0) += bytes;
        }
        let mut rows: Vec<(u64, u64, f64)> = agg.into_iter().map(|((x, y), w)| (x, y, w)).collect();
        // Sort for deterministic output (HashMap iteration order varies).
        rows.sort_unstable_by_key(|&(x, y, _)| (x, y));
        SpatialData::from_xyw(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_scale() {
        let cfg = NetworkConfig {
            flows: 20_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let data = cfg.generate(&mut rng);
        // Aggregation merges some pairs, but most survive.
        assert!(data.len() > 10_000, "only {} pairs", data.len());
        assert!(data.len() <= 20_000);
        assert!(data.total_weight() > 0.0);
    }

    #[test]
    fn coordinates_inside_domain() {
        let cfg = NetworkConfig {
            bits: 12,
            flows: 5_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let data = cfg.generate(&mut rng);
        let side = 1u64 << 12;
        for p in &data.points {
            assert!(p.coord(0) < side && p.coord(1) < side);
        }
    }

    #[test]
    fn traffic_is_clustered_in_prefixes() {
        // The top source /8-equivalent should carry far more than 1/256 of
        // the weight — i.e., the data is not uniform.
        let cfg = NetworkConfig {
            bits: 16,
            flows: 30_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let data = cfg.generate(&mut rng);
        let total = data.total_weight();
        let buckets = 256u64;
        let shift = 16 - 8;
        let mut by_bucket = vec![0.0; buckets as usize];
        for (wk, p) in data.keys.iter().zip(&data.points) {
            by_bucket[(p.coord(0) >> shift) as usize] += wk.weight;
        }
        let max = by_bucket.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 4.0 * total / buckets as f64,
            "max bucket {max} vs uniform share {}",
            total / buckets as f64
        );
    }

    #[test]
    fn weights_are_heavy_tailed() {
        let cfg = NetworkConfig {
            flows: 20_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let data = cfg.generate(&mut rng);
        let mut weights: Vec<f64> = data.keys.iter().map(|wk| wk.weight).collect();
        weights.sort_by(f64::total_cmp);
        let total: f64 = weights.iter().sum();
        let top1pct: f64 = weights[weights.len() * 99 / 100..].iter().sum();
        assert!(
            top1pct > 0.2 * total,
            "top 1% holds only {:.3} of weight",
            top1pct / total
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = NetworkConfig {
            flows: 1_000,
            ..Default::default()
        };
        let d1 = cfg.generate(&mut StdRng::seed_from_u64(5));
        let d2 = cfg.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(d1.len(), d2.len());
        assert_eq!(d1.total_weight(), d2.total_weight());
    }
}
