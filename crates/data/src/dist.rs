//! Zipf and bounded-Pareto distributions for workload synthesis.

use rand::Rng;

/// A Zipf(θ) sampler over ranks `0..n` using a precomputed CDF.
///
/// Rank `r` has probability proportional to `1/(r+1)^θ`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `r`.
    pub fn probability(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

/// Draws from a bounded Pareto distribution on `[lo, hi]` with tail index
/// `alpha` — the heavy-tailed model for flow sizes / record weights.
///
/// # Panics
/// Panics if `lo <= 0`, `hi <= lo`, or `alpha <= 0`.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, alpha: f64) -> f64 {
    assert!(
        lo > 0.0 && hi > lo && alpha > 0.0,
        "invalid Pareto parameters"
    );
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    // Inverse CDF: u = (1 − L^α x^(−α)) / (1 − (L/H)^α).
    let x = ((1.0 - u + u * la / ha) / la).powf(-1.0 / alpha);
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.1);
        let sum: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(50));
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_empirical_matches() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let runs = 100_000;
        let mut counts = [0usize; 20];
        for _ in 0..runs {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let freq = count as f64 / runs as f64;
            assert!(
                (freq - z.probability(r)).abs() < 0.01,
                "rank {r}: {freq} vs {}",
                z.probability(r)
            );
        }
    }

    #[test]
    fn pareto_in_bounds_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut max = 0.0_f64;
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let x = bounded_pareto(&mut rng, 1.0, 10_000.0, 1.2);
            assert!((1.0..=10_000.0).contains(&x), "out of bounds: {x}");
            max = max.max(x);
            sum += x;
        }
        let mean = sum / n as f64;
        // Heavy tail: the max dominates the mean by orders of magnitude.
        assert!(max > 100.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    #[should_panic(expected = "invalid Pareto")]
    fn pareto_bad_params_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        bounded_pareto(&mut rng, 0.0, 1.0, 1.0);
    }
}
