//! Query batteries matching the paper's two models (Section 6.1):
//!
//! * **uniform area** — each rectangle is placed uniformly at random with
//!   height and width uniform in `[0, h] × [0, w]`, for a scale factor
//!   relative to the domain;
//! * **uniform weight** — rectangles are cells of one level of a kd-tree
//!   built over the *full* data (independent of any summary's kd-tree), so
//!   each covers approximately the same total weight.
//!
//! A query is a union of `k` disjoint rectangles; the paper's batteries use
//! 50 queries of 1–100 rectangles.

use rand::Rng;

use sas_sampling::product::SpatialData;
use sas_structures::kdtree::{KdHierarchy, KdItem};
use sas_structures::product::{BoxRange, MultiRangeQuery};

/// Generates `count` uniform-area multi-range queries over a
/// `side_x × side_y` domain. Each query is `ranges` random rectangles with
/// width/height uniform in `[1, max_frac·side]`; overlapping rectangles are
/// rejected and re-drawn so the ranges are disjoint.
pub fn uniform_area_queries<R: Rng + ?Sized>(
    rng: &mut R,
    side_x: u64,
    side_y: u64,
    count: usize,
    ranges: usize,
    max_frac: f64,
) -> Vec<MultiRangeQuery> {
    assert!(side_x > 1 && side_y > 1, "degenerate domain");
    assert!((0.0..=1.0).contains(&max_frac), "max_frac out of [0,1]");
    let wx = ((side_x as f64 * max_frac) as u64).max(1);
    let wy = ((side_y as f64 * max_frac) as u64).max(1);
    (0..count)
        .map(|_| {
            let mut boxes: Vec<BoxRange> = Vec::with_capacity(ranges);
            let mut attempts = 0;
            while boxes.len() < ranges && attempts < ranges * 200 {
                attempts += 1;
                let w = rng.gen_range(1..=wx);
                let h = rng.gen_range(1..=wy);
                let x0 = rng.gen_range(0..side_x.saturating_sub(w).max(1));
                let y0 = rng.gen_range(0..side_y.saturating_sub(h).max(1));
                let b = BoxRange::xy(x0, x0 + w - 1, y0, y0 + h - 1);
                if boxes.iter().all(|existing| !existing.overlaps(&b)) {
                    boxes.push(b);
                }
            }
            MultiRangeQuery::new(boxes)
        })
        .collect()
}

/// Builds the equal-weight partition of the full data: cells of the kd-tree
/// over all points (uniform per-point probability), stopped at cells of at
/// most `1/parts` of the total weight. Returns the cell boxes.
pub fn equal_weight_cells(data: &SpatialData, parts: usize) -> Vec<BoxRange> {
    assert!(parts >= 1, "need at least one part");
    let total = data.total_weight();
    if data.is_empty() || total <= 0.0 {
        return Vec::new();
    }
    // Scale weights so the target cell mass is 1.0, then reuse the
    // mass-balanced kd construction. Probabilities must be ≤ 1, so scale
    // per-item values into (0, 1] by dividing by the max item weight too.
    let max_w = data
        .keys
        .iter()
        .map(|wk| wk.weight)
        .fold(f64::MIN_POSITIVE, f64::max);
    let cell_mass = total / parts as f64;
    let items: Vec<KdItem> = data
        .keys
        .iter()
        .zip(&data.points)
        .filter(|(wk, _)| wk.weight > 0.0)
        .map(|(wk, p)| KdItem {
            key: wk.key,
            point: p.clone(),
            prob: (wk.weight / max_w).clamp(1e-12, 1.0),
        })
        .collect();
    let tree = KdHierarchy::build(items, cell_mass / max_w);
    tree.leaves()
        .into_iter()
        .map(|n| tree.cell(n).clone())
        .collect()
}

/// Generates `count` uniform-weight multi-range queries: each query picks
/// `ranges` distinct cells of the equal-weight partition with
/// `parts ≈ ranges / weight_frac` cells, so the query covers roughly
/// `weight_frac` of the total weight.
pub fn uniform_weight_queries<R: Rng + ?Sized>(
    rng: &mut R,
    data: &SpatialData,
    count: usize,
    ranges: usize,
    weight_frac: f64,
) -> Vec<MultiRangeQuery> {
    assert!(
        weight_frac > 0.0 && weight_frac <= 1.0,
        "bad weight fraction"
    );
    let parts = ((ranges as f64 / weight_frac).round() as usize).max(ranges.max(1));
    let cells = equal_weight_cells(data, parts);
    if cells.is_empty() {
        return vec![MultiRangeQuery::new(Vec::new()); count];
    }
    (0..count)
        .map(|_| {
            // Sample `ranges` distinct cells (or all cells if fewer exist).
            let k = ranges.min(cells.len());
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            while chosen.len() < k {
                let c = rng.gen_range(0..cells.len());
                if !chosen.contains(&c) {
                    chosen.push(c);
                }
            }
            MultiRangeQuery::new(chosen.into_iter().map(|c| cells[c].clone()).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_data(n: usize, side: u64, seed: u64) -> SpatialData {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<(u64, u64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..side),
                    rng.gen_range(0..side),
                    rng.gen_range(0.5..3.0),
                )
            })
            .collect();
        SpatialData::from_xyw(&rows)
    }

    #[test]
    fn uniform_area_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let qs = uniform_area_queries(&mut rng, 1 << 16, 1 << 16, 20, 25, 0.1);
        assert_eq!(qs.len(), 20);
        for q in &qs {
            assert_eq!(q.range_count(), 25);
            for b in &q.boxes {
                assert!(!b.is_empty());
                assert!(b.sides[0].len() <= (1u64 << 16) / 10 + 1);
            }
            // Disjointness.
            for i in 0..q.boxes.len() {
                for j in (i + 1)..q.boxes.len() {
                    assert!(!q.boxes[i].overlaps(&q.boxes[j]), "overlap {i},{j}");
                }
            }
        }
    }

    #[test]
    fn equal_weight_cells_balance() {
        let data = random_data(3000, 1 << 10, 2);
        let parts = 64;
        let cells = equal_weight_cells(&data, parts);
        assert!(cells.len() >= parts / 2, "only {} cells", cells.len());
        let total = data.total_weight();
        let target = total / parts as f64;
        // Every cell's weight is within a small factor of the target.
        for c in &cells {
            let w = data.box_weight(c);
            assert!(
                w <= 3.0 * target + 1e-9,
                "cell weight {w} vs target {target}"
            );
        }
        // Cells tile the domain: weights sum to the total.
        let sum: f64 = cells.iter().map(|c| data.box_weight(c)).sum();
        assert!((sum - total).abs() < 1e-6 * total);
    }

    #[test]
    fn uniform_weight_queries_cover_fraction() {
        let data = random_data(5000, 1 << 10, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let qs = uniform_weight_queries(&mut rng, &data, 10, 10, 0.1);
        let total = data.total_weight();
        for q in &qs {
            let w: f64 = q.boxes.iter().map(|b| data.box_weight(b)).sum();
            let frac = w / total;
            assert!(
                frac > 0.02 && frac < 0.4,
                "query covers {frac} of weight, wanted ≈0.1"
            );
        }
    }

    #[test]
    fn empty_data_queries() {
        let data = SpatialData::from_xyw(&[]);
        let mut rng = StdRng::seed_from_u64(5);
        let qs = uniform_weight_queries(&mut rng, &data, 3, 5, 0.1);
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[0].range_count(), 0);
    }

    #[test]
    fn max_frac_one_allows_huge_rects() {
        let mut rng = StdRng::seed_from_u64(6);
        let qs = uniform_area_queries(&mut rng, 1 << 8, 1 << 8, 5, 1, 1.0);
        assert_eq!(qs.len(), 5);
        assert!(qs.iter().all(|q| q.range_count() == 1));
    }
}
