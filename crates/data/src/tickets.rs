//! Synthetic trouble-ticket data: the paper's Technical Ticket data set
//! equivalent.
//!
//! Keys are pairs of a *trouble code* and a *network location*, each a point
//! in its own hierarchy with varying branching factors per level (total
//! domain ≈ 2^24 per dimension in the paper). Path popularity is Zipf per
//! level, and the weight distribution has a heavy head: many repeated
//! high-weight keys, which is why the paper observes both samplers being
//! forced to include the same keys at small sizes.
//!
//! Hierarchy nodes are mapped to contiguous coordinate intervals by mixed-
//! radix encoding of the path, so hierarchy ranges are coordinate intervals
//! and boxes behave exactly as in the paper's product-of-hierarchies space.

use rand::Rng;

use sas_sampling::product::SpatialData;

use crate::dist::{bounded_pareto, Zipf};

/// Configuration of the ticket-data generator.
#[derive(Debug, Clone)]
pub struct TicketConfig {
    /// Branching factors per level of the trouble-code hierarchy.
    pub trouble_branching: Vec<usize>,
    /// Branching factors per level of the network-location hierarchy.
    pub location_branching: Vec<usize>,
    /// Number of ticket records (distinct pairs after aggregation lower).
    pub tickets: usize,
    /// Zipf exponent for child choice at each level.
    pub theta: f64,
    /// Pareto tail index for record weights.
    pub alpha: f64,
}

impl Default for TicketConfig {
    fn default() -> Self {
        Self {
            // Products: 16·8·8·4·4 = 2^14 per dim by default (the paper's
            // 2^24 is reachable by adding levels; benches keep it modest).
            trouble_branching: vec![16, 8, 8, 4, 4],
            location_branching: vec![16, 8, 8, 4, 4],
            tickets: 100_000,
            theta: 0.9,
            alpha: 0.9,
        }
    }
}

/// One hierarchy dimension: samples a leaf coordinate by walking levels.
#[derive(Debug)]
struct DimSampler {
    /// Zipf child-choice distribution per level.
    levels: Vec<Zipf>,
    branching: Vec<usize>,
    /// Per-level random permutation so popular children are not always the
    /// low-coordinate ones (keeps popular subtrees spread over the domain).
    perms: Vec<Vec<usize>>,
}

impl DimSampler {
    fn new<R: Rng + ?Sized>(branching: &[usize], theta: f64, rng: &mut R) -> Self {
        let levels = branching.iter().map(|&b| Zipf::new(b, theta)).collect();
        let perms = branching
            .iter()
            .map(|&b| {
                let mut p: Vec<usize> = (0..b).collect();
                // Fisher–Yates.
                for i in (1..b).rev() {
                    let j = rng.gen_range(0..=i);
                    p.swap(i, j);
                }
                p
            })
            .collect();
        Self {
            levels,
            branching: branching.to_vec(),
            perms,
        }
    }

    /// Draws a leaf coordinate (mixed-radix path encoding).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut coord = 0u64;
        for (lvl, z) in self.levels.iter().enumerate() {
            let child = self.perms[lvl][z.sample(rng)];
            coord = coord * self.branching[lvl] as u64 + child as u64;
        }
        coord
    }
}

impl TicketConfig {
    /// Per-dimension domain sizes `(trouble, location)`.
    pub fn domains(&self) -> (u64, u64) {
        (
            self.trouble_branching.iter().map(|&b| b as u64).product(),
            self.location_branching.iter().map(|&b| b as u64).product(),
        )
    }

    /// Generates the data set (weights of repeated pairs aggregate).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SpatialData {
        let troubles = DimSampler::new(&self.trouble_branching, self.theta, rng);
        let locations = DimSampler::new(&self.location_branching, self.theta, rng);
        let mut agg: std::collections::HashMap<(u64, u64), f64> =
            std::collections::HashMap::with_capacity(self.tickets);
        for _ in 0..self.tickets {
            let t = troubles.sample(rng);
            let l = locations.sample(rng);
            let w = bounded_pareto(rng, 1.0, 1e5, self.alpha);
            *agg.entry((t, l)).or_insert(0.0) += w;
        }
        let mut rows: Vec<(u64, u64, f64)> = agg.into_iter().map(|((x, y), w)| (x, y, w)).collect();
        // Sort for deterministic output (HashMap iteration order varies).
        rows.sort_unstable_by_key(|&(x, y, _)| (x, y));
        SpatialData::from_xyw(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn domains_multiply() {
        let cfg = TicketConfig::default();
        let (t, l) = cfg.domains();
        assert_eq!(t, 16 * 8 * 8 * 4 * 4);
        assert_eq!(l, 16 * 8 * 8 * 4 * 4);
    }

    #[test]
    fn coordinates_in_domain() {
        let cfg = TicketConfig {
            tickets: 5_000,
            ..Default::default()
        };
        let (td, ld) = cfg.domains();
        let mut rng = StdRng::seed_from_u64(1);
        let data = cfg.generate(&mut rng);
        for p in &data.points {
            assert!(p.coord(0) < td && p.coord(1) < ld);
        }
    }

    #[test]
    fn zipf_concentration_creates_repeats() {
        // Popular paths repeat: distinct pairs < tickets by a visible margin
        // when the domain is small relative to the ticket count.
        let cfg = TicketConfig {
            trouble_branching: vec![8, 8, 4],
            location_branching: vec![8, 8, 4],
            tickets: 30_000,
            theta: 1.2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let data = cfg.generate(&mut rng);
        assert!(
            (data.len() as f64) < 0.95 * 30_000.0,
            "{} distinct of 30000",
            data.len()
        );
    }

    #[test]
    fn heavy_head_regime() {
        // The paper notes many high-weight keys that every sampler must
        // include: the top 100 keys should carry a sizable weight share.
        let cfg = TicketConfig {
            tickets: 50_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let data = cfg.generate(&mut rng);
        let mut weights: Vec<f64> = data.keys.iter().map(|wk| wk.weight).collect();
        weights.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = weights.iter().sum();
        let top100: f64 = weights.iter().take(100).sum();
        assert!(top100 > 0.05 * total, "top-100 share {:.4}", top100 / total);
    }

    #[test]
    fn subtree_ranges_are_contiguous() {
        // Mixed-radix encoding: the subtree of the first-level child c of
        // the trouble hierarchy is exactly [c·(domain/16), (c+1)·(domain/16)).
        let cfg = TicketConfig {
            tickets: 10_000,
            ..Default::default()
        };
        let (td, _) = cfg.domains();
        let sub = td / 16;
        let mut rng = StdRng::seed_from_u64(4);
        let data = cfg.generate(&mut rng);
        // Every point's first-level child index recomputed from coordinate
        // matches integer division — a tautology of the encoding we assert
        // to lock the layout.
        for p in &data.points {
            let child = p.coord(0) / sub;
            assert!(child < 16);
        }
    }
}
