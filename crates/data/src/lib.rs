//! # sas-data — synthetic workloads and query batteries
//!
//! The paper evaluates on two proprietary AT&T data sets. This crate builds
//! the closest synthetic equivalents (the substitution is documented in
//! `DESIGN.md`):
//!
//! * [`network`] — IP-flow-style data: source/destination pairs clustered
//!   in Zipf-popular prefixes of a two-dimensional address hierarchy, with
//!   Pareto (heavy-tailed) flow sizes. Matches the paper's Network data
//!   shape: ~63K sources, ~50K destinations, ~196K active pairs.
//! * [`tickets`] — trouble-ticket-style data: two product hierarchies with
//!   varying branching factors, Zipf path popularity and a heavy-headed
//!   weight distribution (many keys that any sampler must include).
//! * [`dist`] — Zipf and bounded-Pareto samplers.
//! * [`queries`] — the paper's two query models: *uniform area* (random
//!   rectangles of bounded size) and *uniform weight* (cells of an
//!   equal-mass kd-tree partition of the full data), each assembled into
//!   multi-rectangle queries of `k` disjoint ranges.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod network;
pub mod queries;
pub mod tickets;

pub use network::NetworkConfig;
pub use queries::{uniform_area_queries, uniform_weight_queries};
pub use tickets::TicketConfig;
