//! # structure-aware-sampling
//!
//! Facade crate for the full reproduction of *Cohen, Cormode, Duffield,
//! "Structure-Aware Sampling: Flexible and Accurate Summarization"*
//! (VLDB 2011). Re-exports the public API of every workspace crate:
//!
//! * [`core`] — VarOpt/IPPS sampling primitives, estimation, tail bounds,
//!   and the [`Mergeable`] trait for combining summaries of disjoint data.
//! * [`structures`] — orders, hierarchies, product spaces, kd-hierarchies.
//! * [`sampling`] — the structure-aware samplers (the paper's contribution)
//!   and the sharded parallel summarization driver
//!   ([`sampling::sharded::summarize_sharded`]).
//! * [`summaries`] — baseline summaries (wavelet, q-digest, count-sketch),
//!   the erased [`Summary`] trait with its [`SummaryKind`] registry, and
//!   the unified query API: every [`Query`] (box, multi-range, point,
//!   hierarchy node, total) is answered with an [`Estimate`] — a value
//!   with variance and a per-kind confidence interval.
//! * [`codec`] — the versioned binary wire format behind
//!   [`summaries::encode_summary`] / [`summaries::decode_summary`]: save,
//!   merge, and query summaries across process boundaries.
//! * [`obs`] — lock-free observability primitives: log-bucketed latency
//!   histograms, counters, the metric registry served by `sas client
//!   metrics`, and the leveled `slog!` logger.
//! * [`store`] — the concurrent summary catalog: windowed ingest,
//!   merge-tree compaction, snapshot-swapped reads, crash-safe
//!   persistence, and the `sas serve` TCP daemon.
//! * [`data`] — synthetic workload and query generators.
//!
//! See `examples/quickstart.rs` for a guided tour
//! (`examples/save_merge_query.rs` for the persistence workflow), and
//! `DESIGN.md` / `EXPERIMENTS.md` for the experiment index.

pub use sas_apps as apps;
pub use sas_codec as codec;
pub use sas_core as core;
pub use sas_data as data;
pub use sas_obs as obs;
pub use sas_sampling as sampling;
pub use sas_store as store;
pub use sas_structures as structures;
pub use sas_summaries as summaries;

pub use sas_core::Mergeable;
pub use sas_summaries::{Estimate, Query, QueryBatch, QueryError, Summary, SummaryKind};
