#!/usr/bin/env bash
# Checks a fresh bench run against the committed baseline.
#
#   usage: scripts/bench_regression.sh <current.json> [baseline.json]
#          scripts/bench_regression.sh --core <current.json> [baseline.json]
#
# Default mode gates the store daemon bench (sas-bench --bin store, daemon
# phase) against BENCH_store.json: any error/BUSY response or unanswered
# request is a hard failure, and throughput may not collapse below a
# quarter of the committed baseline (shared hardware jitters; a 4x slide
# is a regression, not noise).
#
# --core gates the core bench rollup (scripts/bench_core.sh) against
# BENCH_core.json the same way: every rate must stay above baseline/4,
# and merge_tree_allocs_per_merge — an absolute count, not a rate — may
# not grow past 4x the committed value.
set -euo pipefail

field() { grep -o "\"$2\": *[0-9.]*" "$1" | head -1 | grep -o '[0-9.]*$'; }

ge_floor() { awk -v c="$1" -v b="$2" 'BEGIN { exit !(c >= b / 4) }'; }
le_ceiling() { awk -v c="$1" -v b="$2" 'BEGIN { exit !(c <= b * 4) }'; }

if [ "${1:-}" = "--core" ]; then
  shift
  cur=${1:?usage: bench_regression.sh --core <current.json> [baseline.json]}
  base=${2:-$(dirname "$0")/../BENCH_core.json}
  fail=0
  rates="ingest_keys_per_s sharded8_keys_per_s merge_tree_merges_per_s \
    codec_encode_mb_s codec_decode_mb_s merge_from_disk_mb_s \
    merge_from_disk_merges_per_s answer_batch_1d_qps answer_loop_1d_qps \
    answer_batch_2d_qps answer_loop_2d_qps store_hot_8t_ops_per_s \
    cold_query_view_qps cold_query_decode_qps"
  for name in $rates; do
    c=$(field "$cur" "$name" || true)
    b=$(field "$base" "$name" || true)
    if [ -z "$c" ] || [ -z "$b" ]; then
      echo "FAIL: $name missing from $([ -z "$c" ] && echo "$cur" || echo "$base")"
      fail=1
      continue
    fi
    if ge_floor "$c" "$b"; then
      echo "OK:   $name $c >= floor $(awk -v b="$b" 'BEGIN{printf "%.1f", b/4}') (baseline $b / 4)"
    else
      echo "FAIL: $name $c fell below floor $(awk -v b="$b" 'BEGIN{printf "%.1f", b/4}') (baseline $b / 4)"
      fail=1
    fi
  done
  c=$(field "$cur" merge_tree_allocs_per_merge || true)
  b=$(field "$base" merge_tree_allocs_per_merge || true)
  if [ -n "$c" ] && [ -n "$b" ] && le_ceiling "$c" "$b"; then
    echo "OK:   merge_tree_allocs_per_merge $c <= ceiling $(awk -v b="$b" 'BEGIN{printf "%.1f", b*4}') (baseline $b * 4)"
  else
    echo "FAIL: merge_tree_allocs_per_merge ${c:-missing} exceeded ceiling (baseline ${b:-missing} * 4)"
    fail=1
  fi
  exit "$fail"
fi

cur=${1:?usage: bench_regression.sh <current.json> [baseline.json]}
base=${2:-$(dirname "$0")/../BENCH_store.json}

cur_rps=$(field "$cur" throughput_rps)
cur_err=$(field "$cur" err)
cur_ok=$(field "$cur" ok)
cur_req=$(field "$cur" requests)
base_rps=$(field "$base" throughput_rps)

echo "current:  rps=$cur_rps ok=$cur_ok err=$cur_err requests=$cur_req"
echo "baseline: rps=$base_rps ($base)"

if [ "$cur_err" != 0 ]; then
  echo "FAIL: $cur_err error/BUSY responses (expected 0)"
  exit 1
fi
if [ "$cur_ok" != "$cur_req" ]; then
  echo "FAIL: only $cur_ok of $cur_req requests answered OK"
  exit 1
fi

floor=$(awk -v r="$base_rps" 'BEGIN { printf "%.0f", r / 4 }')
if [ "$(awk -v c="$cur_rps" -v f="$floor" 'BEGIN { print (c >= f) ? 1 : 0 }')" != 1 ]; then
  echo "FAIL: throughput $cur_rps rps fell below the floor $floor rps (baseline / 4)"
  exit 1
fi
echo "OK: throughput $cur_rps rps >= floor $floor rps"
