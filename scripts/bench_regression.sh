#!/usr/bin/env bash
# Checks a fresh daemon-bench run (sas-bench --bin store, daemon phase)
# against the committed baseline in BENCH_store.json.
#
#   usage: scripts/bench_regression.sh <current.json> [baseline.json]
#
# Hard failures: any error/BUSY response, or any request left unanswered.
# Soft floor: throughput may jitter on shared hardware, so only a collapse
# below a quarter of the committed baseline fails the check.
set -euo pipefail

cur=${1:?usage: bench_regression.sh <current.json> [baseline.json]}
base=${2:-$(dirname "$0")/../BENCH_store.json}

field() { grep -o "\"$2\": *[0-9.]*" "$1" | head -1 | grep -o '[0-9.]*$'; }

cur_rps=$(field "$cur" throughput_rps)
cur_err=$(field "$cur" err)
cur_ok=$(field "$cur" ok)
cur_req=$(field "$cur" requests)
base_rps=$(field "$base" throughput_rps)

echo "current:  rps=$cur_rps ok=$cur_ok err=$cur_err requests=$cur_req"
echo "baseline: rps=$base_rps ($base)"

if [ "$cur_err" != 0 ]; then
  echo "FAIL: $cur_err error/BUSY responses (expected 0)"
  exit 1
fi
if [ "$cur_ok" != "$cur_req" ]; then
  echo "FAIL: only $cur_ok of $cur_req requests answered OK"
  exit 1
fi

floor=$(awk -v r="$base_rps" 'BEGIN { printf "%.0f", r / 4 }')
if [ "$(awk -v c="$cur_rps" -v f="$floor" 'BEGIN { print (c >= f) ? 1 : 0 }')" != 1 ]; then
  echo "FAIL: throughput $cur_rps rps fell below the floor $floor rps (baseline / 4)"
  exit 1
fi
echo "OK: throughput $cur_rps rps >= floor $floor rps"
