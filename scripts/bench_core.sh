#!/usr/bin/env bash
# Runs the four core (non-store) bench bins — sharded, codec, query,
# one_dim — and merges their headline fields into one flat JSON with the
# shape committed as BENCH_core.json, for scripts/bench_regression.sh
# --core to gate on.
#
#   usage: scripts/bench_core.sh <out.json> [bin-dir]
#
# Scale knobs pass through to the bins (SAS_SHARD_N, SAS_CODEC_N,
# SAS_QUERY_ITEMS, SAS_ONEDIM_N, ...); with smaller inputs the rates only
# go up, so a bounded CI run stays safe against the committed floors. The
# one_dim error fields are recorded for the trajectory but not gated —
# they shift with N, and the accuracy envelopes are pinned by the test
# suite instead.
set -euo pipefail

out=${1:?usage: bench_core.sh <out.json> [bin-dir]}
bindir=${2:-$(dirname "$0")/../target/release}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for bin in sharded codec query one_dim; do
  "$bindir/$bin" --json "$tmp/$bin.json" >/dev/null
done

field() { grep -o "\"$2\": *[0-9.]*" "$1" | head -1 | grep -o '[0-9.]*$'; }

{
  echo '{'
  echo '  "bench": "core",'
  printf '  "%s": %s,\n' \
    ingest_keys_per_s "$(field "$tmp/sharded.json" ingest_keys_per_s)" \
    sharded8_keys_per_s "$(field "$tmp/sharded.json" sharded8_keys_per_s)" \
    merge_tree_merges_per_s "$(field "$tmp/sharded.json" merge_tree_merges_per_s)" \
    merge_tree_allocs_per_merge "$(field "$tmp/sharded.json" merge_tree_allocs_per_merge)" \
    codec_encode_mb_s "$(field "$tmp/codec.json" codec_encode_mb_s)" \
    codec_decode_mb_s "$(field "$tmp/codec.json" codec_decode_mb_s)" \
    merge_from_disk_mb_s "$(field "$tmp/codec.json" merge_from_disk_mb_s)" \
    merge_from_disk_merges_per_s "$(field "$tmp/codec.json" merge_from_disk_merges_per_s)" \
    answer_batch_1d_qps "$(field "$tmp/query.json" answer_batch_1d_qps)" \
    answer_loop_1d_qps "$(field "$tmp/query.json" answer_loop_1d_qps)" \
    answer_batch_2d_qps "$(field "$tmp/query.json" answer_batch_2d_qps)" \
    answer_loop_2d_qps "$(field "$tmp/query.json" answer_loop_2d_qps)"
  printf '  "%s": %s\n' \
    store_hot_8t_ops_per_s "$(field "$tmp/query.json" store_hot_8t_ops_per_s)"
  echo '}'
} > "$out"
echo "wrote $out"
