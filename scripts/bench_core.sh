#!/usr/bin/env bash
# Runs the five core (non-store) bench bins — sharded, codec, query,
# one_dim, cold — and merges their headline fields into one flat JSON with
# the shape committed as BENCH_core.json, for scripts/bench_regression.sh
# --core to gate on.
#
#   usage: scripts/bench_core.sh <out.json> [bin-dir]
#
# Scale knobs pass through to the bins (SAS_SHARD_N, SAS_CODEC_N,
# SAS_QUERY_ITEMS, SAS_ONEDIM_N, SAS_COLD_WINDOWS, ...); with smaller
# inputs the rates only go up, so a bounded CI run stays safe against the
# committed floors. The one_dim error fields are recorded for the
# trajectory but not gated — they shift with N, and the accuracy envelopes
# are pinned by the test suite instead.
set -euo pipefail

out=${1:?usage: bench_core.sh <out.json> [bin-dir]}
bindir=${2:-$(dirname "$0")/../target/release}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for bin in sharded codec query one_dim cold; do
  status=0
  "$bindir/$bin" --json "$tmp/$bin.json" >/dev/null || status=$?
  if [ "$status" -ne 0 ]; then
    echo "FAIL: bench bin '$bin' crashed (exit $status); no JSON to merge" >&2
    exit 1
  fi
  if [ ! -s "$tmp/$bin.json" ]; then
    echo "FAIL: bench bin '$bin' exited 0 but wrote no JSON to $tmp/$bin.json" >&2
    exit 1
  fi
done

# Extracts a numeric field, failing loudly when it is absent — a silently
# empty value would render as invalid JSON and surface as a confusing
# parse error much later. Callers capture via `var=$(field ...)`, where
# `set -e` turns the inner exit into a script abort.
field() {
  v=$(grep -o "\"$2\": *[0-9.]*" "$1" | head -1 | grep -o '[0-9.]*$' || true)
  if [ -z "$v" ]; then
    echo "FAIL: field '$2' missing from $1 (did the bin change its JSON shape?)" >&2
    exit 1
  fi
  echo "$v"
}

ingest_keys_per_s=$(field "$tmp/sharded.json" ingest_keys_per_s)
sharded8_keys_per_s=$(field "$tmp/sharded.json" sharded8_keys_per_s)
merge_tree_merges_per_s=$(field "$tmp/sharded.json" merge_tree_merges_per_s)
merge_tree_allocs_per_merge=$(field "$tmp/sharded.json" merge_tree_allocs_per_merge)
codec_encode_mb_s=$(field "$tmp/codec.json" codec_encode_mb_s)
codec_decode_mb_s=$(field "$tmp/codec.json" codec_decode_mb_s)
merge_from_disk_mb_s=$(field "$tmp/codec.json" merge_from_disk_mb_s)
merge_from_disk_merges_per_s=$(field "$tmp/codec.json" merge_from_disk_merges_per_s)
answer_batch_1d_qps=$(field "$tmp/query.json" answer_batch_1d_qps)
answer_loop_1d_qps=$(field "$tmp/query.json" answer_loop_1d_qps)
answer_batch_2d_qps=$(field "$tmp/query.json" answer_batch_2d_qps)
answer_loop_2d_qps=$(field "$tmp/query.json" answer_loop_2d_qps)
store_hot_8t_ops_per_s=$(field "$tmp/query.json" store_hot_8t_ops_per_s)
cold_query_view_qps=$(field "$tmp/cold.json" cold_query_view_qps)
cold_query_decode_qps=$(field "$tmp/cold.json" cold_query_decode_qps)

{
  echo '{'
  echo '  "bench": "core",'
  printf '  "%s": %s,\n' \
    ingest_keys_per_s "$ingest_keys_per_s" \
    sharded8_keys_per_s "$sharded8_keys_per_s" \
    merge_tree_merges_per_s "$merge_tree_merges_per_s" \
    merge_tree_allocs_per_merge "$merge_tree_allocs_per_merge" \
    codec_encode_mb_s "$codec_encode_mb_s" \
    codec_decode_mb_s "$codec_decode_mb_s" \
    merge_from_disk_mb_s "$merge_from_disk_mb_s" \
    merge_from_disk_merges_per_s "$merge_from_disk_merges_per_s" \
    answer_batch_1d_qps "$answer_batch_1d_qps" \
    answer_loop_1d_qps "$answer_loop_1d_qps" \
    answer_batch_2d_qps "$answer_batch_2d_qps" \
    answer_loop_2d_qps "$answer_loop_2d_qps" \
    cold_query_view_qps "$cold_query_view_qps" \
    cold_query_decode_qps "$cold_query_decode_qps"
  printf '  "%s": %s\n' \
    store_hot_8t_ops_per_s "$store_hot_8t_ops_per_s"
  echo '}'
} > "$out"
echo "wrote $out"
