//! End-to-end integration tests: generate → summarize → query → compare,
//! across every crate through the facade.

use rand::rngs::StdRng;
use rand::SeedableRng;

use structure_aware_sampling::core::varopt::VarOptSampler;
use structure_aware_sampling::data::{
    uniform_area_queries, uniform_weight_queries, NetworkConfig, TicketConfig,
};
use structure_aware_sampling::sampling::two_pass;
use structure_aware_sampling::summaries::exact::{ExactEngine, SampleSummary};
use structure_aware_sampling::summaries::qdigest::QDigestSummary;
use structure_aware_sampling::summaries::wavelet::WaveletSummary;
use structure_aware_sampling::summaries::RangeSumSummary;

fn network() -> structure_aware_sampling::sampling::product::SpatialData {
    let cfg = NetworkConfig {
        bits: 10,
        flows: 15_000,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(1);
    cfg.generate(&mut rng)
}

#[test]
fn full_pipeline_network_accuracy_ordering() {
    let data = network();
    let exact = ExactEngine::new(&data);
    let total = exact.total();
    let s = 800;

    let mut rng = StdRng::seed_from_u64(2);
    let aware = SampleSummary::new(
        "aware",
        &two_pass::sample_product(&data, s, 5, &mut rng),
        &data,
    );
    let obliv = SampleSummary::new(
        "obliv",
        &VarOptSampler::sample_slice(s, &data.keys, &mut rng),
        &data,
    );

    let mut qrng = StdRng::seed_from_u64(3);
    let queries = uniform_area_queries(&mut qrng, 1 << 10, 1 << 10, 40, 10, 0.3);

    let err = |sm: &dyn RangeSumSummary| -> f64 {
        queries
            .iter()
            .map(|q| (sm.estimate_multi(q) - exact.multi_sum(q)).abs())
            .sum::<f64>()
            / (queries.len() as f64 * total)
    };
    let (ea, eo) = (err(&aware), err(&obliv));
    // The headline: structure-aware no worse than oblivious on range
    // batteries (usually 2x better; allow slack for one seed).
    assert!(
        ea < 1.2 * eo,
        "aware error {ea} not competitive with oblivious {eo}"
    );
    // And both are far better than nothing (error below 5% of total).
    assert!(ea < 0.05 && eo < 0.10, "errors too large: {ea}, {eo}");
}

#[test]
fn all_summaries_answer_the_same_queries() {
    let data = network();
    let exact = ExactEngine::new(&data);
    let s = 500;
    let mut rng = StdRng::seed_from_u64(4);

    let summaries: Vec<Box<dyn RangeSumSummary>> = vec![
        Box::new(SampleSummary::new(
            "aware",
            &two_pass::sample_product(&data, s, 5, &mut rng),
            &data,
        )),
        Box::new(SampleSummary::new(
            "obliv",
            &VarOptSampler::sample_slice(s, &data.keys, &mut rng),
            &data,
        )),
        Box::new(WaveletSummary::build(&data, 10, 10, s)),
        Box::new(QDigestSummary::build(&data, 10, s)),
    ];

    let mut qrng = StdRng::seed_from_u64(5);
    let queries = uniform_weight_queries(&mut qrng, &data, 10, 5, 0.1);
    for sm in &summaries {
        assert!(sm.size_elements() <= s + 1, "{} too large", sm.name());
        for q in &queries {
            let est = sm.estimate_multi(q);
            let truth = exact.multi_sum(q);
            // Sanity window: no summary may be wildly out (10x total).
            assert!(
                (est - truth).abs() < 0.5 * exact.total(),
                "{}: {est} vs {truth}",
                sm.name()
            );
        }
    }
}

#[test]
fn ticket_pipeline_runs_end_to_end() {
    let cfg = TicketConfig {
        tickets: 20_000,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(6);
    let data = cfg.generate(&mut rng);
    let exact = ExactEngine::new(&data);
    let s = 600;
    let aware = SampleSummary::new(
        "aware",
        &two_pass::sample_product(&data, s, 5, &mut rng),
        &data,
    );
    assert_eq!(aware.size_elements(), s);

    // Hierarchy-aligned box: first-level trouble subtree × whole location
    // domain. Mixed-radix layout makes this a coordinate interval.
    let (td, ld) = cfg.domains();
    let sub = td / 16;
    let q = structure_aware_sampling::structures::product::BoxRange::xy(0, sub - 1, 0, ld - 1);
    let truth = exact.box_sum(&q);
    let est = aware.estimate_box(&q);
    assert!(
        (est - truth).abs() < 0.1 * exact.total(),
        "subtree estimate {est} vs {truth}"
    );
}

#[test]
fn sample_supports_arbitrary_subset_queries() {
    // What dedicated summaries cannot do: estimate an arbitrary predicate
    // (not a range) from the same summary, unbiasedly.
    let data = network();
    let truth: f64 = data
        .keys
        .iter()
        .zip(&data.points)
        .filter(|(_, p)| (p.coord(0) ^ p.coord(1)) % 3 == 0)
        .map(|(wk, _)| wk.weight)
        .sum();
    let runs = 300;
    let mut acc = 0.0;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let sample = two_pass::sample_product(&data, 400, 5, &mut rng);
        let point_of: std::collections::HashMap<u64, _> = data
            .keys
            .iter()
            .zip(&data.points)
            .map(|(wk, p)| (wk.key, p))
            .collect();
        acc += sample.subset_estimate(|k| {
            point_of
                .get(&k)
                .is_some_and(|p| (p.coord(0) ^ p.coord(1)) % 3 == 0)
        });
    }
    let mean = acc / runs as f64;
    assert!(
        (mean - truth).abs() / truth < 0.05,
        "mean estimate {mean} vs truth {truth}"
    );
}

#[test]
fn two_pass_memory_is_bounded_by_guide_size() {
    // Structural test: the partition derived from the guide sample has at
    // most s' cells, so pass-2 state is O(s'). We check the observable
    // consequence: the sample is exact-size and correct even when the data
    // is 100x larger than the summary.
    let data = network();
    let s = 150;
    let mut rng = StdRng::seed_from_u64(7);
    let sample = two_pass::sample_product(&data, s, 5, &mut rng);
    assert_eq!(sample.len(), s);
    let est = sample.total_estimate();
    let truth: f64 = data.total_weight();
    assert!(
        (est - truth).abs() / truth < 0.2,
        "total estimate {est} vs {truth}"
    );
}
