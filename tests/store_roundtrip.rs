//! Facade-level store integration: the paper's summaries (1-D samples and
//! 2-D deterministic baselines) flowing through the windowed catalog —
//! ingest, compaction, and restart — with answers checked against direct
//! in-memory summaries.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use structure_aware_sampling::core::WeightedKey;
use structure_aware_sampling::sampling::product::SpatialData;
use structure_aware_sampling::store::window::Level;
use structure_aware_sampling::store::{Store, StoreConfig};
use structure_aware_sampling::summaries::qdigest::QDigestSummary;
use structure_aware_sampling::summaries::{StoredSample, Summary, SummaryKind};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sas-facade-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_batch(lo: u64, n: u64, seed: u64) -> Box<dyn Summary> {
    let rows: Vec<WeightedKey> = (lo..lo + n)
        .map(|k| WeightedKey::new(k, 0.5 + (k % 11) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    Box::new(StoredSample::one_dim(
        structure_aware_sampling::sampling::order::sample(&rows, rows.len(), &mut rng),
    ))
}

fn spatial_batch(shift: u64, n: u64) -> Box<dyn Summary> {
    let rows: Vec<(u64, u64, f64)> = (0..n)
        .map(|i| {
            (
                (i * 13 + shift) % 64,
                (i * 29 + shift) % 64,
                1.0 + (i % 3) as f64,
            )
        })
        .collect();
    Box::new(QDigestSummary::build(
        &SpatialData::from_xyw(&rows),
        6,
        usize::MAX,
    ))
}

#[test]
fn windowed_store_tracks_direct_summaries_across_kinds_and_restart() {
    let dir = temp_dir("kinds");
    let store = Store::open(&dir, StoreConfig::default()).unwrap();

    // A 1-D sample series across two hours plus a 2-D q-digest series.
    for (i, ts) in [0u64, 60, 3600, 3660, 7200].into_iter().enumerate() {
        store
            .ingest("flows", ts, sample_batch(i as u64 * 300, 200, i as u64))
            .unwrap();
        store
            .ingest("grid", ts, spatial_batch(i as u64, 150))
            .unwrap();
    }

    let sample_truth: f64 = (0..5u64)
        .flat_map(|i| (i * 300..i * 300 + 200).map(|k| 0.5 + (k % 11) as f64))
        .sum();
    let full1 = [(0u64, u64::MAX)];
    let got = store
        .query("flows", SummaryKind::Sample, &full1, None)
        .value;
    assert!((got - sample_truth).abs() / sample_truth < 1e-9);

    // The q-digest store answer equals merging the same batches directly.
    let mut direct = spatial_batch(0, 150);
    let mut rng = StdRng::seed_from_u64(1);
    for i in 1..5u64 {
        direct
            .merge_in_place(spatial_batch(i, 150), None, &mut rng)
            .unwrap();
    }
    let boxq = [(5u64, 40u64), (10u64, 55u64)];
    let got = store.query("grid", SummaryKind::QDigest, &boxq, None).value;
    let want = direct.range_sum(&boxq);
    assert!(
        (got - want).abs() <= want.abs() * 1e-9,
        "store {got} vs direct {want}"
    );

    // Compact (hours 0 and 1 are sealed), then restart: answers persist.
    let rollups = store.compact_once().unwrap();
    assert_eq!(rollups, 4, "two sealed hours × two series");
    let q_after = store.query("grid", SummaryKind::QDigest, &boxq, None).value;
    assert!((q_after - want).abs() <= want.abs() * 1e-9);
    let flows_after = store
        .query("flows", SummaryKind::Sample, &full1, None)
        .value;

    drop(store);
    let store = Arc::new(Store::open(&dir, StoreConfig::default()).unwrap());
    assert_eq!(
        store
            .query("flows", SummaryKind::Sample, &full1, None)
            .value
            .to_bits(),
        flows_after.to_bits()
    );
    assert_eq!(
        store
            .query("grid", SummaryKind::QDigest, &boxq, None)
            .value
            .to_bits(),
        q_after.to_bits()
    );
    let hours = store
        .list()
        .iter()
        .filter(|r| r.key.level == Level::Hour)
        .count();
    assert_eq!(hours, 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn facade_estimates_across_kinds_and_compaction() {
    // The facade path of the PR-5 acceptance criterion: Store::estimate
    // returns an Estimate with bounds for sampled *and* deterministic
    // series, the value agrees bit-for-bit with the legacy path, and the
    // guarantee survives compaction.
    use structure_aware_sampling::Query;
    let dir = temp_dir("estimate");
    let store = Store::open(&dir, StoreConfig::default()).unwrap();
    for (i, ts) in [0u64, 60, 120, 3700].iter().enumerate() {
        store
            .ingest("flows", *ts, sample_batch(i as u64 * 500, 300, *ts))
            .unwrap();
        store
            .ingest("grid", *ts, spatial_batch(i as u64, 80))
            .unwrap();
    }
    let probes = [
        Query::interval(0, 999),
        Query::Total,
        Query::MultiRange(vec![vec![(0, 99)], vec![(700, 1299)]]),
    ];
    for q in &probes {
        let ans = store
            .estimate("flows", SummaryKind::Sample, q, 0.95, None)
            .unwrap();
        let e = ans.estimate;
        assert!(e.lower <= e.value && e.value <= e.upper, "{q}: {e:?}");
    }
    let grid_q = Query::BoxRange(vec![(0, 31), (0, 63)]);
    let grid = store
        .estimate("grid", SummaryKind::QDigest, &grid_q, 0.95, None)
        .unwrap()
        .estimate;
    assert_eq!(grid.confidence, 1.0, "deterministic kind certifies");
    assert!(grid.lower <= grid.value && grid.value <= grid.upper);

    // Values agree with the legacy path before and after compaction.
    let legacy = store
        .query("flows", SummaryKind::Sample, &[(0, 999)], None)
        .value;
    let est = store
        .estimate("flows", SummaryKind::Sample, &probes[0], 0.95, None)
        .unwrap();
    assert_eq!(legacy.to_bits(), est.estimate.value.to_bits());
    assert!(store.compact_once().unwrap() > 0);
    let legacy_after = store
        .query("flows", SummaryKind::Sample, &[(0, 999)], None)
        .value;
    let est_after = store
        .estimate("flows", SummaryKind::Sample, &probes[0], 0.95, None)
        .unwrap();
    assert_eq!(legacy_after.to_bits(), est_after.estimate.value.to_bits());
    // Exact batches: the interval still contains the exact sub-range sum.
    let truth: f64 = (0..=999u64)
        .filter(|k| k % 500 < 300)
        .map(|k| 0.5 + (k % 11) as f64)
        .sum();
    assert!(
        est_after.estimate.lower <= truth && truth <= est_after.estimate.upper,
        "exact {truth} outside [{}, {}]",
        est_after.estimate.lower,
        est_after.estimate.upper
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
