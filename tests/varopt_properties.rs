//! Property-based tests of the core sampling invariants (proptest).
//!
//! These lock the claims the paper's analysis rests on:
//! * the IPPS threshold solves Σ min(1, wᵢ/τ) = s;
//! * pair aggregation preserves total probability mass and sets an entry;
//! * every sampler produces exactly-s samples and IPPS heavy-key behaviour;
//! * the structure-aware guarantees (Δ < 1 hierarchy / prefix, Δ < 2
//!   interval) hold on arbitrary random inputs, not just the unit-test
//!   fixtures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use structure_aware_sampling::core::aggregate::pair_aggregate;
use structure_aware_sampling::core::{ipps, WeightedKey};
use structure_aware_sampling::sampling;
use structure_aware_sampling::structures::order::{all_intervals, Interval};

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..100.0, 2..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ipps_threshold_solves_equation(weights in weights_strategy(), s_frac in 0.05f64..0.95) {
        let s = ((weights.len() as f64 * s_frac).max(1.0)).floor();
        let tau = ipps::threshold_exact(&weights, s);
        if tau > 0.0 {
            let e = ipps::expected_size(&weights, tau);
            prop_assert!((e - s).abs() < 1e-6, "expected size {e} != {s}");
        } else {
            prop_assert!(s >= weights.len() as f64);
        }
    }

    #[test]
    fn streaming_threshold_matches_exact(weights in weights_strategy(), s_idx in 1usize..40) {
        let s = s_idx.min(weights.len().saturating_sub(1)).max(1);
        let exact = ipps::threshold_exact(&weights, s as f64);
        let mut st = ipps::StreamingThreshold::new(s);
        for &w in &weights {
            st.push(w);
        }
        let streamed = st.finish();
        prop_assert!((exact - streamed).abs() <= 1e-6 * (1.0 + exact),
            "exact {exact} vs streamed {streamed}");
    }

    #[test]
    fn pair_aggregate_preserves_mass(pi in 0.001f64..0.999, pj in 0.001f64..0.999, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b, _) = pair_aggregate(pi, pj, &mut rng);
        prop_assert!((a + b - (pi + pj)).abs() < 1e-9);
        prop_assert!(a == 0.0 || a == 1.0 || b == 0.0 || b == 1.0, "no entry set: {a}, {b}");
        prop_assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
    }

    #[test]
    fn order_sampler_size_and_interval_bound(
        weights in prop::collection::vec(0.05f64..50.0, 4..60),
        s_frac in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let data: Vec<WeightedKey> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| WeightedKey::new(i as u64, w))
            .collect();
        let s = ((data.len() as f64 * s_frac) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let smp = sampling::order::sample(&data, s, &mut rng);
        prop_assert_eq!(smp.len(), s);
        // Theorem 1: every interval has discrepancy < 2; prefixes < 1.
        let n = data.len() as u64;
        for iv in all_intervals(n) {
            let d = sampling::order::interval_discrepancy(&smp, &data, s, iv, |k| k);
            prop_assert!(d < 2.0 + 1e-6, "interval {:?}: discrepancy {}", iv, d);
            if iv.lo == 0 {
                prop_assert!(d < 1.0 + 1e-6, "prefix {:?}: discrepancy {}", iv, d);
            }
        }
    }

    #[test]
    fn disjoint_sampler_per_range_bound(
        weights in prop::collection::vec(0.05f64..50.0, 8..80),
        ranges in 2u64..8,
        seed in 0u64..500,
    ) {
        let data: Vec<WeightedKey> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| WeightedKey::new(i as u64, w))
            .collect();
        let s = (data.len() / 3).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let smp = sampling::disjoint::sample(&data, s, |k| k % ranges, &mut rng);
        prop_assert_eq!(smp.len(), s);
        for (r, d) in sampling::disjoint::range_discrepancies(&smp, &data, s, |k| k % ranges) {
            prop_assert!(d < 1.0 + 1e-6, "range {}: discrepancy {}", r, d);
        }
    }

    #[test]
    fn systematic_sample_prefix_bound(
        weights in prop::collection::vec(0.05f64..50.0, 4..80),
        s_idx in 1usize..20,
        alpha in 0.0f64..0.999,
    ) {
        let data: Vec<WeightedKey> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| WeightedKey::new(i as u64, w))
            .collect();
        let s = s_idx.min(weights.len() - 1).max(1);
        let tau = ipps::threshold_for_keys(&data, s as f64);
        let smp = structure_aware_sampling::core::systematic::sample_with_offset(&data, tau, alpha);
        // Prefix discrepancy < 1 for systematic samples.
        let in_sample: std::collections::HashSet<u64> = smp.keys().collect();
        let mut cum = 0.0;
        let mut count = 0.0;
        for wk in &data {
            cum += if tau > 0.0 { (wk.weight / tau).min(1.0) } else { 1.0 };
            if in_sample.contains(&wk.key) {
                count += 1.0;
            }
            prop_assert!((count - cum).abs() < 1.0 + 1e-9);
        }
    }
}

#[test]
fn hierarchy_sampler_delta_below_one_randomized() {
    // Random hierarchies with random weights: Δ < 1 under every node.
    use structure_aware_sampling::structures::hierarchy::HierarchyBuilder;
    let mut rng = StdRng::seed_from_u64(12345);
    use rand::Rng;
    for trial in 0..40 {
        let mut b = HierarchyBuilder::new();
        let root = b.root();
        let mut key = 0u64;
        // Random depth-3 hierarchy.
        for _ in 0..rng.gen_range(2..6) {
            let g = b.add_internal(root);
            for _ in 0..rng.gen_range(1..4) {
                let sg = b.add_internal(g);
                for _ in 0..rng.gen_range(1..6) {
                    b.add_leaf(sg, key);
                    key += 1;
                }
            }
        }
        let h = b.build();
        let data: Vec<WeightedKey> = (0..key)
            .map(|k| WeightedKey::new(k, rng.gen_range(0.1..30.0)))
            .collect();
        let s = rng.gen_range(1..key as usize + 1);
        let smp = sampling::hierarchy::sample(&data, &h, s, &mut rng);
        assert_eq!(smp.len(), s.min(key as usize), "trial {trial}");
        for d in sampling::hierarchy::node_discrepancies(&smp, &data, &h, s) {
            assert!(d < 1.0 + 1e-6, "trial {trial}: node discrepancy {d}");
        }
    }
}

#[test]
fn interval_bound_is_tight_for_varopt() {
    // Theorem 1(ii) flavor: some order-structure samples do reach
    // discrepancies close to 2 (the bound is not slack).
    let mut rng = StdRng::seed_from_u64(77);
    let data: Vec<WeightedKey> = (0..200).map(|k| WeightedKey::new(k, 1.0)).collect();
    let mut worst: f64 = 0.0;
    for _ in 0..200 {
        let smp = sampling::order::sample(&data, 40, &mut rng);
        for iv in [
            Interval::new(10, 150),
            Interval::new(37, 121),
            Interval::new(3, 196),
        ] {
            worst = worst.max(sampling::order::interval_discrepancy(
                &smp,
                &data,
                40,
                iv,
                |k| k,
            ));
        }
    }
    assert!(
        worst > 1.0,
        "worst observed interval discrepancy only {worst}"
    );
    assert!(worst < 2.0 + 1e-6);
}
