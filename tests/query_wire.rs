//! Wire-format certification for the query API's two new frame kinds:
//! committed golden frames pin the `Query` and `Estimate` encodings
//! (tests/golden/query_v1.sas, estimate_v1.sas), and bit-flip/truncation
//! sweeps mirror tests/codec_robustness.rs — a corrupted or hostile frame
//! must surface as `Err`, never a panic.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```sh
//! SAS_REGEN_GOLDEN=1 cargo test --test query_wire
//! ```

use std::path::PathBuf;

use structure_aware_sampling::codec::{crc32, CodecError, TRAILER_LEN};
use structure_aware_sampling::summaries::query::{
    decode_estimate, decode_query, encode_estimate, encode_query,
};
use structure_aware_sampling::{Estimate, Query};

/// The pinned query: exercises the multi-range payload (the richest
/// layout) with sorted disjoint boxes.
fn golden_query() -> Query {
    Query::MultiRange(vec![
        vec![(0, 99), (10, 49)],
        vec![(200, 299), (10, 49)],
        vec![(1000, u64::MAX)],
    ])
}

/// The pinned estimate: non-trivial value, variance, and bounds.
fn golden_estimate() -> Estimate {
    Estimate {
        value: 1234.5,
        variance: 42.25,
        lower: 1190.0,
        upper: 1280.75,
        confidence: 0.95,
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn golden_frames_pin_the_query_wire_format() {
    let dir = golden_dir();
    let regen = std::env::var_os("SAS_REGEN_GOLDEN").is_some();
    let fixtures: Vec<(&str, Vec<u8>)> = vec![
        ("query_v1.sas", encode_query(&golden_query())),
        ("estimate_v1.sas", encode_estimate(&golden_estimate())),
    ];
    for (file, bytes) in &fixtures {
        let path = dir.join(file);
        if regen {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, bytes).expect("write golden file");
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{file}: missing golden file ({e}); see module docs"));
        // The committed frame still decodes to the pinned fixture, and a
        // fresh encoding reproduces the committed bytes exactly.
        assert_eq!(
            bytes, &committed,
            "{file}: freshly encoded fixture drifted from the committed frame"
        );
    }
    if !regen {
        let q = decode_query(&std::fs::read(dir.join("query_v1.sas")).unwrap())
            .expect("committed query frame decodes");
        assert_eq!(q, golden_query());
        let e = decode_estimate(&std::fs::read(dir.join("estimate_v1.sas")).unwrap())
            .expect("committed estimate frame decodes");
        assert_eq!(e, golden_estimate());
    }
    assert!(
        !regen,
        "golden files regenerated; rerun without SAS_REGEN_GOLDEN"
    );
}

/// Every query shape round-trips through its frame.
fn query_fixtures() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        (
            "box",
            encode_query(&Query::BoxRange(vec![(5, 10), (0, 63)])),
        ),
        ("multi", encode_query(&golden_query())),
        ("point", encode_query(&Query::Point(vec![17, 23]))),
        (
            "node",
            encode_query(&Query::HierarchyNode {
                level: 12,
                index: 9,
            }),
        ),
        ("total", encode_query(&Query::Total)),
        ("estimate", encode_estimate(&golden_estimate())),
    ]
}

/// Decodes a fixture as whatever frame kind it claims to be.
fn decode_any(bytes: &[u8]) -> Result<(), CodecError> {
    match decode_query(bytes) {
        Ok(_) => Ok(()),
        Err(CodecError::UnknownKind(_)) => decode_estimate(bytes).map(|_| ()),
        Err(e) => Err(e),
    }
}

#[test]
fn every_fixture_decodes_cleanly() {
    for (name, bytes) in query_fixtures() {
        decode_any(&bytes).unwrap_or_else(|e| panic!("{name}: pristine frame rejected: {e}"));
    }
}

#[test]
fn bit_flip_sweep_rejects_every_corruption() {
    for (name, bytes) in query_fixtures() {
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_any(&corrupt).is_err(),
                "{name}: flipping bit {bit} of {} was not rejected",
                bytes.len() * 8
            );
        }
    }
}

#[test]
fn truncation_sweep_rejects_every_prefix() {
    for (name, bytes) in query_fixtures() {
        for len in 0..bytes.len() {
            assert!(
                decode_query(&bytes[..len]).is_err() && decode_estimate(&bytes[..len]).is_err(),
                "{name}: {len}-byte prefix was not rejected"
            );
        }
    }
}

/// Recomputes the trailing CRC so tampered frames survive the envelope
/// check and exercise the field validation underneath.
fn fix_checksum(bytes: &mut [u8]) {
    let at = bytes.len() - TRAILER_LEN;
    let crc = crc32(&bytes[..at]);
    bytes[at..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn structurally_invalid_queries_are_rejected_behind_valid_envelopes() {
    use structure_aware_sampling::codec::{encode_frame, proto, Writer};
    // Reversed bounds.
    let reversed = encode_frame(proto::TAG_QUERY, |w: &mut Writer| {
        w.section(1, |w| w.put_u8(1));
        w.section(2, |w| {
            w.put_u64(1);
            w.put_u64(9);
            w.put_u64(3);
        });
    });
    assert!(decode_query(&reversed).is_err());
    // Overlapping multi-range boxes.
    let overlapping = encode_frame(proto::TAG_QUERY, |w: &mut Writer| {
        w.section(1, |w| w.put_u8(2));
        w.section(2, |w| {
            w.put_u64(2);
            for (lo, hi) in [(0u64, 10u64), (5, 20)] {
                w.put_u64(1);
                w.put_u64(lo);
                w.put_u64(hi);
            }
        });
    });
    assert!(decode_query(&overlapping).is_err());
    // Out-of-range hierarchy node.
    let node = encode_frame(proto::TAG_QUERY, |w: &mut Writer| {
        w.section(1, |w| w.put_u8(4));
        w.section(2, |w| {
            w.put_u32(60);
            w.put_u64(16); // index ≥ 2^(64-60)
        });
    });
    assert!(decode_query(&node).is_err());
    // Unknown query kind tag.
    let unknown = encode_frame(proto::TAG_QUERY, |w: &mut Writer| {
        w.section(1, |w| w.put_u8(99));
        w.section(2, |_| {});
    });
    assert!(decode_query(&unknown).is_err());
    // A query frame is not an estimate and vice versa.
    assert!(matches!(
        decode_estimate(&encode_query(&Query::Total)),
        Err(CodecError::UnknownKind(_))
    ));
    assert!(matches!(
        decode_query(&encode_estimate(&golden_estimate())),
        Err(CodecError::UnknownKind(_))
    ));
    // Tampered estimate fields behind a fixed-up checksum: force the
    // confidence f64 to 7.0 (bytes of the last field) — must be rejected.
    let mut forged = encode_estimate(&golden_estimate());
    let at = forged.len() - TRAILER_LEN - 8;
    forged[at..at + 8].copy_from_slice(&7.0f64.to_bits().to_le_bytes());
    fix_checksum(&mut forged);
    assert!(decode_estimate(&forged).is_err());
}
