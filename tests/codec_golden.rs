//! Golden-file check for the binary wire format: committed `.sas` frames
//! (one per summary kind, under `tests/golden/`) must keep decoding, must
//! re-encode byte-for-byte, and freshly built fixtures must reproduce them
//! exactly. Any drift in the format — section layout, field widths, kind
//! tags, canonical ordering — fails here before it can silently orphan
//! files written by earlier builds.
//!
//! Regenerate after an *intentional* format change (bump
//! `sas_codec::VERSION` first!) with:
//!
//! ```sh
//! SAS_REGEN_GOLDEN=1 cargo test --test codec_golden
//! ```

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use structure_aware_sampling::core::varopt::VarOptSampler;
use structure_aware_sampling::core::WeightedKey;
use structure_aware_sampling::sampling::product::SpatialData;
use structure_aware_sampling::summaries::countsketch::SketchSummary;
use structure_aware_sampling::summaries::qdigest::QDigestSummary;
use structure_aware_sampling::summaries::wavelet::WaveletSummary;
use structure_aware_sampling::summaries::{decode_summary, encode_summary, StoredSample};
use structure_aware_sampling::SummaryKind;

/// Expected decode-time metadata per golden file.
struct Golden {
    file: &'static str,
    kind: SummaryKind,
    dims: usize,
    bytes: Vec<u8>,
}

/// Deterministic workload: no RNG in the data, fixed seeds in the builds.
fn golden_fixtures() -> Vec<Golden> {
    let data: Vec<WeightedKey> = (0..200u64)
        .map(|k| WeightedKey::new(k, 1.0 + ((k * 37) % 101) as f64 / 4.0))
        .collect();
    let mut rng = StdRng::seed_from_u64(42);
    let sample = structure_aware_sampling::sampling::order::sample(&data, 24, &mut rng);

    let mut varopt = VarOptSampler::new(16);
    let mut vrng = StdRng::seed_from_u64(43);
    for wk in &data {
        varopt.push(wk.key, wk.weight, &mut vrng);
    }

    let rows: Vec<(u64, u64, f64)> = (0..120u64)
        .map(|i| ((i * 13) % 32, (i * 29) % 32, 1.0 + (i % 9) as f64))
        .collect();
    let spatial = SpatialData::from_xyw(&rows);

    vec![
        Golden {
            file: "sample_v1.sas",
            kind: SummaryKind::Sample,
            dims: 1,
            bytes: encode_summary(&StoredSample::one_dim(sample)),
        },
        Golden {
            file: "varopt_v1.sas",
            kind: SummaryKind::VarOptReservoir,
            dims: 1,
            bytes: encode_summary(&varopt),
        },
        Golden {
            file: "qdigest_v1.sas",
            kind: SummaryKind::QDigest,
            dims: 2,
            bytes: encode_summary(&QDigestSummary::build(&spatial, 5, 20)),
        },
        Golden {
            file: "wavelet_v1.sas",
            kind: SummaryKind::Wavelet,
            dims: 2,
            bytes: encode_summary(&WaveletSummary::build(&spatial, 5, 5, 30)),
        },
        Golden {
            file: "sketch_v1.sas",
            kind: SummaryKind::CountSketch,
            dims: 2,
            bytes: encode_summary(&SketchSummary::build(&spatial, 5, 5, 300, 7)),
        },
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn golden_files_pin_the_wire_format() {
    let dir = golden_dir();
    let regen = std::env::var_os("SAS_REGEN_GOLDEN").is_some();
    for golden in golden_fixtures() {
        let path = dir.join(golden.file);
        if regen {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, &golden.bytes).expect("write golden file");
            continue;
        }
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden file ({e}); see module docs",
                golden.file
            )
        });

        // 1. The committed frame still decodes, to the right kind.
        let decoded = decode_summary(&committed)
            .unwrap_or_else(|e| panic!("{}: committed frame no longer decodes: {e}", golden.file));
        assert_eq!(decoded.kind(), golden.kind, "{}", golden.file);
        assert_eq!(decoded.dims(), golden.dims, "{}", golden.file);
        assert!(decoded.item_count() > 0, "{}", golden.file);

        // 2. Encoding is canonical: re-encoding the decoded summary
        //    reproduces the committed bytes exactly.
        assert_eq!(
            encode_summary(decoded.as_ref()),
            committed,
            "{}: decode→encode drifted from the committed frame",
            golden.file
        );

        // 3. A fresh build of the same fixture still serializes to the
        //    committed bytes — the build and the format are both stable.
        assert_eq!(
            golden.bytes, committed,
            "{}: freshly built fixture no longer matches the committed frame",
            golden.file
        );
    }
    assert!(
        !regen,
        "golden files regenerated; rerun without SAS_REGEN_GOLDEN"
    );
}
