//! Wire-format certification for the lifecycle protocol: committed golden
//! frames pin the `REQ_ESTIMATE_COV`, `REQ_WATCH`, `REQ_POLICY_SET`,
//! `REQ_POLICY_SHOW`, and `RESP_PUSH` encodings (tests/golden/policy_*.sas,
//! watch_*.sas), and bit-flip/truncation sweeps mirror tests/query_wire.rs
//! — a corrupted frame must surface as `Err`, never a panic. The fixtures
//! exercise every layer of the new layouts: a policy with all three knobs
//! set, an empty policy list, a coverage report with both expired and
//! missing gaps, and a push frame carrying estimate plus coverage.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```sh
//! SAS_REGEN_GOLDEN=1 cargo test --test policy_wire
//! ```

use std::path::PathBuf;

use structure_aware_sampling::codec::proto;
use structure_aware_sampling::store::policy::{Coverage, Gap, Policy};
use structure_aware_sampling::store::wire::{
    decode_push, decode_request, decode_response, encode_push, encode_request, encode_response,
    is_push, Request, Response, WatchUpdate,
};
use structure_aware_sampling::{Estimate, Query, SummaryKind};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// A policy with every knob set — all three wire branches non-empty.
fn full_policy() -> Policy {
    Policy {
        compact_after: Some(60),
        retention_ttl: Some(120),
        per_kind_budget: [(SummaryKind::Sample.tag(), 64)].into_iter().collect(),
    }
}

/// A coverage report with one expired and one missing gap — both flag
/// values on the wire.
fn full_coverage() -> Coverage {
    Coverage {
        requested: Some((0, 299)),
        gaps: vec![
            Gap {
                start: 0,
                end: 119,
                expired: true,
            },
            Gap {
                start: 240,
                end: 299,
                expired: false,
            },
        ],
    }
}

fn estimate() -> Estimate {
    Estimate {
        value: 41.5,
        variance: 2.25,
        lower: 38.0,
        upper: 47.0,
        confidence: 0.9,
    }
}

/// `(file, request tag to decode responses under, bytes)`; the push frame
/// uses tag 0 as a marker — it decodes through `decode_push` instead.
fn fixtures() -> Vec<(&'static str, u16, Vec<u8>)> {
    vec![
        (
            "estimate_cov_req_v1.sas",
            proto::REQ_ESTIMATE_COV,
            encode_request(&Request::EstimateCov {
                dataset: "web".into(),
                kind: SummaryKind::Sample,
                query: Query::BoxRange(vec![(0, 499)]),
                confidence: 0.9,
                time: Some((0, 299)),
            }),
        ),
        (
            "estimate_cov_resp_v1.sas",
            proto::REQ_ESTIMATE_COV,
            encode_response(&Response::EstimateCov {
                estimate: estimate(),
                windows: 2,
                cached: false,
                coverage: full_coverage(),
            }),
        ),
        (
            "watch_req_v1.sas",
            proto::REQ_WATCH,
            encode_request(&Request::Watch {
                dataset: "web".into(),
                kind: SummaryKind::Sample,
                query: Query::Total,
                confidence: 0.95,
                time: None,
            }),
        ),
        (
            "watch_resp_v1.sas",
            proto::REQ_WATCH,
            encode_response(&Response::Watch { watch_id: 42 }),
        ),
        (
            "policy_set_req_v1.sas",
            proto::REQ_POLICY_SET,
            encode_request(&Request::PolicySet {
                dataset: "web".into(),
                policy: full_policy(),
            }),
        ),
        (
            "policy_set_resp_v1.sas",
            proto::REQ_POLICY_SET,
            encode_response(&Response::PolicySet),
        ),
        (
            "policy_show_req_v1.sas",
            proto::REQ_POLICY_SHOW,
            encode_request(&Request::PolicyShow { dataset: None }),
        ),
        (
            "policy_show_resp_v1.sas",
            proto::REQ_POLICY_SHOW,
            encode_response(&Response::Policies(vec![
                (
                    "app".into(),
                    Policy {
                        retention_ttl: Some(3600),
                        ..Policy::default()
                    },
                ),
                ("web".into(), full_policy()),
            ])),
        ),
        (
            "watch_push_v1.sas",
            0,
            encode_push(&WatchUpdate {
                watch_id: 42,
                version: 7,
                windows: 2,
                estimate: estimate(),
                coverage: full_coverage(),
            }),
        ),
    ]
}

/// Whether `bytes` fails every decode path a peer could try on it.
fn rejected(bytes: &[u8], tag: u16) -> bool {
    if tag == 0 {
        decode_push(bytes).is_err()
    } else {
        decode_request(bytes).is_err() && decode_response(bytes, tag).is_err()
    }
}

#[test]
fn golden_frames_pin_the_lifecycle_wire_format() {
    let dir = golden_dir();
    let regen = std::env::var_os("SAS_REGEN_GOLDEN").is_some();
    for (file, _, bytes) in &fixtures() {
        let path = dir.join(file);
        if regen {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, bytes).expect("write golden file");
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{file}: missing golden file ({e}); see module docs"));
        assert_eq!(
            bytes, &committed,
            "{file}: freshly encoded fixture drifted from the committed frame"
        );
    }
    assert!(
        !regen,
        "golden files regenerated; rerun without SAS_REGEN_GOLDEN"
    );
}

#[test]
fn committed_frames_decode_to_the_fixtures() {
    let dir = golden_dir();
    let req = decode_request(&std::fs::read(dir.join("watch_req_v1.sas")).unwrap())
        .expect("committed watch request decodes");
    assert!(matches!(req, Request::Watch { .. }));
    let resp = decode_response(
        &std::fs::read(dir.join("estimate_cov_resp_v1.sas")).unwrap(),
        proto::REQ_ESTIMATE_COV,
    )
    .expect("committed coverage response decodes");
    match resp {
        Response::EstimateCov { coverage, .. } => {
            assert_eq!(coverage, full_coverage());
            assert!(!coverage.is_complete());
        }
        other => panic!("unexpected response {other:?}"),
    }
    let push_bytes = std::fs::read(dir.join("watch_push_v1.sas")).unwrap();
    assert!(is_push(&push_bytes));
    let push = decode_push(&push_bytes).expect("committed push decodes");
    assert_eq!(push.watch_id, 42);
    assert_eq!(push.estimate, estimate());
}

#[test]
fn bit_flip_sweep_rejects_every_corruption() {
    for (name, tag, bytes) in fixtures() {
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                rejected(&corrupt, tag),
                "{name}: flipping bit {bit} of {} was not rejected",
                bytes.len() * 8
            );
        }
    }
}

#[test]
fn truncation_sweep_rejects_every_prefix() {
    for (name, tag, bytes) in fixtures() {
        for len in 0..bytes.len() {
            assert!(
                rejected(&bytes[..len], tag),
                "{name}: {len}-byte prefix was not rejected"
            );
        }
    }
}

#[test]
fn push_frames_are_not_responses_and_vice_versa() {
    let push = fixtures().pop().unwrap().2;
    for tag in [
        proto::REQ_QUERY,
        proto::REQ_ESTIMATE,
        proto::REQ_ESTIMATE_COV,
        proto::REQ_WATCH,
    ] {
        assert!(decode_response(&push, tag).is_err());
    }
    assert!(decode_push(&encode_response(&Response::PolicySet)).is_err());
    assert!(!is_push(&encode_response(&Response::PolicySet)));
}
