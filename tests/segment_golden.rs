//! Golden-file check for the v2 segment format: committed `.sas` segments
//! (one per stored-sample kind, under `tests/golden/`) must keep parsing,
//! must answer queries bit-identically to the v1 frame built from the same
//! fixture, and freshly encoded fixtures must reproduce them exactly. The
//! v1 goldens next to them are pinned by `codec_golden` — this file pins
//! the *new* format without touching them.
//!
//! Regenerate after an *intentional* format change (bump
//! `sas_codec::segment::SEGMENT_VERSION` first!) with:
//!
//! ```sh
//! SAS_REGEN_GOLDEN=1 cargo test --test segment_golden
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use structure_aware_sampling::codec::segment::{is_segment, SegmentView};
use structure_aware_sampling::core::varopt::VarOptSampler;
use structure_aware_sampling::core::WeightedKey;
use structure_aware_sampling::summaries::{
    encode_segment, encode_summary, SegmentSummary, StoredSample, Summary,
};
use structure_aware_sampling::{Query, SummaryKind};

/// Expected metadata per golden segment.
struct Golden {
    file: &'static str,
    kind: SummaryKind,
    owned: Box<dyn Summary>,
    bytes: Vec<u8>,
}

/// Deterministic workload: no RNG in the data, fixed seeds in the builds.
/// Same fixtures as `codec_golden`, so the two formats pin the same
/// summaries.
fn golden_fixtures() -> Vec<Golden> {
    let data: Vec<WeightedKey> = (0..200u64)
        .map(|k| WeightedKey::new(k, 1.0 + ((k * 37) % 101) as f64 / 4.0))
        .collect();
    let mut rng = StdRng::seed_from_u64(42);
    let sample = structure_aware_sampling::sampling::order::sample(&data, 24, &mut rng);
    let stored: Box<dyn Summary> = Box::new(StoredSample::one_dim(sample));

    let mut varopt = VarOptSampler::new(16);
    let mut vrng = StdRng::seed_from_u64(43);
    for wk in &data {
        varopt.push(wk.key, wk.weight, &mut vrng);
    }
    let varopt: Box<dyn Summary> = Box::new(varopt);

    vec![
        Golden {
            file: "segment_sample_v2.sas",
            kind: SummaryKind::Sample,
            bytes: encode_segment(stored.as_ref()).expect("sample has a segment layout"),
            owned: stored,
        },
        Golden {
            file: "segment_varopt_v2.sas",
            kind: SummaryKind::VarOptReservoir,
            bytes: encode_segment(varopt.as_ref()).expect("varopt has a segment layout"),
            owned: varopt,
        },
    ]
}

fn probe_queries() -> Vec<Query> {
    vec![
        Query::Total,
        Query::interval(0, 199),
        Query::interval(40, 90),
        Query::MultiRange(vec![vec![(0, 20)], vec![(60, 199)]]),
        Query::Point(vec![17]),
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn golden_segments_pin_the_v2_format() {
    let dir = golden_dir();
    let regen = std::env::var_os("SAS_REGEN_GOLDEN").is_some();
    for golden in golden_fixtures() {
        let path = dir.join(golden.file);
        if regen {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, &golden.bytes).expect("write golden segment");
            continue;
        }
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden segment ({e}); see module docs",
                golden.file
            )
        });
        assert!(is_segment(&committed), "{}", golden.file);

        // 1. The committed segment still parses: header, section table,
        //    CRC, and the kind-specific column layout.
        let view = SegmentView::parse(&committed)
            .unwrap_or_else(|e| panic!("{}: committed segment no longer parses: {e}", golden.file));
        assert_eq!(view.kind(), golden.kind.tag(), "{}", golden.file);
        assert!(!view.sections().is_empty(), "{}", golden.file);
        let summary = SegmentSummary::open(Arc::new(committed.clone()))
            .unwrap_or_else(|e| panic!("{}: committed segment no longer opens: {e}", golden.file));
        assert_eq!(summary.kind(), golden.kind, "{}", golden.file);

        // 2. Answers through the committed segment are bit-identical to the
        //    owned summary's, single and batched.
        let queries = probe_queries();
        let via_view = summary.answer_batch(&queries, 0.95).expect("view answers");
        let via_owned = golden
            .owned
            .answer_batch(&queries, 0.95)
            .expect("owned answers");
        for (q, (a, b)) in queries.iter().zip(via_view.iter().zip(&via_owned)) {
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "{}: {q}", golden.file);
            assert_eq!(a.lower.to_bits(), b.lower.to_bits(), "{}: {q}", golden.file);
            assert_eq!(a.upper.to_bits(), b.upper.to_bits(), "{}: {q}", golden.file);
        }

        // 3. Hydration reproduces the exact v1 frame — the two formats
        //    stay interchangeable representations of one summary.
        assert_eq!(
            encode_summary(summary.hydrate().as_ref()),
            encode_summary(golden.owned.as_ref()),
            "{}: hydrated segment drifted from the owned v1 frame",
            golden.file
        );

        // 4. A fresh encode of the same fixture still produces the
        //    committed bytes — the build and the format are both stable.
        assert_eq!(
            golden.bytes, committed,
            "{}: freshly encoded fixture no longer matches the committed segment",
            golden.file
        );
    }
    assert!(
        !regen,
        "golden segments regenerated; rerun without SAS_REGEN_GOLDEN"
    );
}

/// The committed v1 goldens must never change because of the v2 work: the
/// segment encoder reads summaries, it does not rewrite frames.
#[test]
fn v1_goldens_are_untouched_by_the_segment_format() {
    let dir = golden_dir();
    for golden in golden_fixtures() {
        let v1_name = match golden.kind {
            SummaryKind::Sample => "sample_v1.sas",
            SummaryKind::VarOptReservoir => "varopt_v1.sas",
            _ => unreachable!("fixtures cover the stored-sample kinds"),
        };
        let v1 = std::fs::read(dir.join(v1_name)).expect("committed v1 golden");
        assert!(!is_segment(&v1), "{v1_name} must stay a v1 frame");
        assert_eq!(
            v1,
            encode_summary(golden.owned.as_ref()),
            "{v1_name}: v1 golden drifted"
        );
    }
}
