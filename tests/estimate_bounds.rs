//! Certification of the query API's error bars (ISSUE 5): the interval an
//! [`Estimate`] reports must actually contain the exact answer —
//! *probabilistically* at the configured confidence for the sample-based
//! kinds (coverage measured over 150 seeds), *always* for the q-digest and
//! wavelet deterministic bounds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use structure_aware_sampling::core::varopt::VarOptSampler;
use structure_aware_sampling::core::WeightedKey;
use structure_aware_sampling::sampling::product::SpatialData;
use structure_aware_sampling::summaries::qdigest::QDigestSummary;
use structure_aware_sampling::summaries::wavelet::WaveletSummary;
use structure_aware_sampling::summaries::StoredSample;
use structure_aware_sampling::{Query, Summary};

const CONFIDENCE: f64 = 0.9;
const SEEDS: u64 = 150;

fn mixed_data(n: u64, seed: u64) -> Vec<WeightedKey> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let w = if rng.gen_bool(0.05) {
                rng.gen_range(20.0..100.0)
            } else {
                rng.gen_range(0.1..3.0)
            };
            WeightedKey::new(k, w)
        })
        .collect()
}

fn exact_range(data: &[WeightedKey], lo: u64, hi: u64) -> f64 {
    data.iter()
        .filter(|wk| (lo..=hi).contains(&wk.key))
        .map(|wk| wk.weight)
        .sum()
}

/// Measures interval coverage for a summary builder over `SEEDS` seeds:
/// one random range per seed, counting how often the exact answer lands
/// inside `[lower, upper]`.
fn coverage(build: impl Fn(&[WeightedKey], &mut StdRng) -> Box<dyn Summary>) -> f64 {
    let mut covered = 0u64;
    for seed in 0..SEEDS {
        let data = mixed_data(800, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let summary = build(&data, &mut rng);
        let lo = rng.gen_range(0..400u64);
        let hi = rng.gen_range(lo..800u64);
        let e = summary
            .answer(&Query::interval(lo, hi), CONFIDENCE)
            .expect("interval query answers");
        assert!(
            e.lower <= e.value && e.value <= e.upper,
            "seed {seed}: value {} outside its own interval [{}, {}]",
            e.value,
            e.lower,
            e.upper
        );
        let exact = exact_range(&data, lo, hi);
        if e.lower <= exact && exact <= e.upper {
            covered += 1;
        }
    }
    covered as f64 / SEEDS as f64
}

#[test]
fn stored_sample_interval_covers_at_configured_confidence() {
    let rate = coverage(|data, rng| {
        let sample = structure_aware_sampling::sampling::order::sample(data, 60, rng);
        Box::new(StoredSample::one_dim(sample))
    });
    assert!(
        rate >= CONFIDENCE - 0.03,
        "sample coverage {rate} below configured confidence {CONFIDENCE}"
    );
}

#[test]
fn varopt_reservoir_interval_covers_at_configured_confidence() {
    let rate = coverage(|data, rng| {
        let mut sampler = VarOptSampler::new(60);
        for wk in data {
            sampler.push(wk.key, wk.weight, rng);
        }
        Box::new(sampler)
    });
    assert!(
        rate >= CONFIDENCE - 0.03,
        "varopt coverage {rate} below configured confidence {CONFIDENCE}"
    );
}

#[test]
fn multirange_and_total_cover_too() {
    // The union-of-boxes and full-domain paths carry the same guarantee;
    // Total is exact-by-construction only when every key is heavy, so the
    // interval must still cover the true total elsewhere.
    let mut covered_multi = 0u64;
    let mut covered_total = 0u64;
    for seed in 0..SEEDS {
        let data = mixed_data(600, seed + 5000);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7777);
        let sample = structure_aware_sampling::sampling::order::sample(&data, 50, &mut rng);
        let summary: Box<dyn Summary> = Box::new(StoredSample::one_dim(sample));
        let q = Query::MultiRange(vec![vec![(0, 99)], vec![(300, 449)]]);
        let e = summary.answer(&q, CONFIDENCE).unwrap();
        let exact = exact_range(&data, 0, 99) + exact_range(&data, 300, 449);
        if e.lower <= exact && exact <= e.upper {
            covered_multi += 1;
        }
        let e = summary.answer(&Query::Total, CONFIDENCE).unwrap();
        let total: f64 = data.iter().map(|wk| wk.weight).sum();
        if e.lower <= total && total <= e.upper {
            covered_total += 1;
        }
    }
    for (name, covered) in [("multi-range", covered_multi), ("total", covered_total)] {
        let rate = covered as f64 / SEEDS as f64;
        assert!(
            rate >= CONFIDENCE - 0.03,
            "{name} coverage {rate} below {CONFIDENCE}"
        );
    }
}

#[test]
fn sketch_intervals_track_row_spread() {
    use structure_aware_sampling::summaries::countsketch::SketchSummary;
    // The sketch's Chebyshev-style interval is a heuristic, so only its
    // structure is certified: value inside its own interval, spread
    // shrinking as the budget grows, and a noise-free sketch collapsing to
    // a (near-)degenerate interval around the exact answer.
    let data = spatial(500, 6, 77);
    let bx = vec![(8u64, 47u64), (0u64, 63u64)];
    let exact = exact_box(&data, &bx);
    let mut last_width = f64::INFINITY;
    for budget in [600usize, 6_000, 600_000] {
        let sketch = SketchSummary::build(&data, 6, 6, budget, 5);
        let summary: &dyn Summary = &sketch;
        let e = summary.answer(&Query::BoxRange(bx.clone()), 0.9).unwrap();
        assert!(e.lower <= e.value && e.value <= e.upper, "{budget}: {e:?}");
        assert!(e.variance >= 0.0);
        let width = e.upper - e.lower;
        assert!(
            width <= last_width * 4.0,
            "budget {budget}: interval exploded ({width} after {last_width})"
        );
        last_width = width;
        if budget == 600_000 {
            assert!((e.value - exact).abs() < 1e-6, "{} vs {exact}", e.value);
            assert!(width < 1e-6, "noise-free sketch still wide: {width}");
        }
    }
    // Confidence 1 is rejected (the Chebyshev deviation would be infinite).
    let sketch = SketchSummary::build(&data, 6, 6, 600, 5);
    let summary: &dyn Summary = &sketch;
    assert!(summary.answer(&Query::Total, 1.0).is_err());
}

fn spatial(n: usize, bits: u32, seed: u64) -> SpatialData {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = 1u64 << bits;
    let rows: Vec<(u64, u64, f64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0..side),
                rng.gen_range(0..side),
                rng.gen_range(0.5..5.0),
            )
        })
        .collect();
    SpatialData::from_xyw(&rows)
}

fn exact_box(data: &SpatialData, b: &[(u64, u64)]) -> f64 {
    data.keys
        .iter()
        .zip(&data.points)
        .filter(|(_, p)| {
            (b[0].0..=b[0].1).contains(&p.coord(0)) && (b[1].0..=b[1].1).contains(&p.coord(1))
        })
        .map(|(wk, _)| wk.weight)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qdigest_deterministic_bounds_always_contain_exact(
        seed in 0u64..10_000,
        budget in 20usize..150,
        x0 in 0u64..64, w in 1u64..64, y0 in 0u64..64, h in 1u64..64,
    ) {
        let data = spatial(400, 6, seed);
        let digest = QDigestSummary::build(&data, 6, budget);
        let summary: &dyn Summary = &digest;
        let bx = vec![(x0, (x0 + w).min(63)), (y0, (y0 + h).min(63))];
        let e = summary.answer(&Query::BoxRange(bx.clone()), 0.5).unwrap();
        let exact = exact_box(&data, &bx);
        prop_assert!(e.confidence == 1.0);
        prop_assert!(e.variance == 0.0);
        prop_assert!(
            e.lower <= exact + 1e-9 && exact <= e.upper + 1e-9,
            "exact {exact} outside [{}, {}] (value {})", e.lower, e.upper, e.value
        );
    }

    #[test]
    fn wavelet_deterministic_bounds_always_contain_exact(
        seed in 0u64..10_000,
        budget in 10usize..200,
        x0 in 0u64..64, w in 1u64..64, y0 in 0u64..64, h in 1u64..64,
    ) {
        let data = spatial(300, 6, seed);
        let wavelet = WaveletSummary::build(&data, 6, 6, budget);
        let summary: &dyn Summary = &wavelet;
        let bx = vec![(x0, (x0 + w).min(63)), (y0, (y0 + h).min(63))];
        let e = summary.answer(&Query::BoxRange(bx.clone()), 0.5).unwrap();
        let exact = exact_box(&data, &bx);
        prop_assert!(e.confidence == 1.0);
        prop_assert!(
            e.lower <= exact + 1e-6 && exact <= e.upper + 1e-6,
            "exact {exact} outside [{}, {}] (value {})", e.lower, e.upper, e.value
        );
    }

    #[test]
    fn sample_estimates_are_structurally_sound(
        seed in 0u64..10_000,
        size in 10usize..100,
        lo in 0u64..500, span in 1u64..500,
    ) {
        let data = mixed_data(500, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
        let sample = structure_aware_sampling::sampling::order::sample(&data, size, &mut rng);
        let summary: Box<dyn Summary> = Box::new(StoredSample::one_dim(sample));
        let q = Query::interval(lo, lo + span);
        let e = summary.answer(&q, 0.95).unwrap();
        prop_assert!(e.lower <= e.value && e.value <= e.upper);
        prop_assert!(e.variance >= 0.0);
        prop_assert!(e.lower >= 0.0, "weights are non-negative; lower = {}", e.lower);
        // Tighter confidence never narrows the interval.
        let wide = summary.answer(&q, 0.999).unwrap();
        prop_assert!(wide.upper - wide.lower + 1e-12 >= e.upper - e.lower);
    }
}
