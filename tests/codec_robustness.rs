//! Decoder robustness certification: corrupted, truncated, wrong-version,
//! and wrong-kind inputs must surface as `Err` — never a panic, never an
//! unbounded allocation. The sweep covers **every registered summary
//! kind**: each kind's encoding is attacked bit by bit (the trailing
//! CRC-32 detects all single-bit errors, so every flip must be rejected)
//! and prefix by prefix.

use rand::rngs::StdRng;
use rand::SeedableRng;

use structure_aware_sampling::codec::{crc32, CodecError, TRAILER_LEN};
use structure_aware_sampling::core::varopt::VarOptSampler;
use structure_aware_sampling::core::WeightedKey;
use structure_aware_sampling::sampling::product::SpatialData;
use structure_aware_sampling::summaries::countsketch::SketchSummary;
use structure_aware_sampling::summaries::qdigest::QDigestSummary;
use structure_aware_sampling::summaries::wavelet::WaveletSummary;
use structure_aware_sampling::summaries::{decode_summary, encode_summary, StoredSample};
use structure_aware_sampling::Summary;

/// Deliberately tiny fixtures: the bit-flip sweep decodes the frame once
/// per bit, so O(bytes²) work must stay cheap.
fn fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let data: Vec<WeightedKey> = (0..60u64)
        .map(|k| WeightedKey::new(k, 0.5 + (k % 7) as f64))
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let sample = structure_aware_sampling::sampling::order::sample(&data, 12, &mut rng);

    let mut varopt = VarOptSampler::new(10);
    for wk in &data {
        varopt.push(wk.key, wk.weight, &mut rng);
    }

    let rows: Vec<(u64, u64, f64)> = (0..40u64).map(|i| (i % 16, (i * 7) % 16, 1.5)).collect();
    let spatial = SpatialData::from_xyw(&rows);

    let stored2 = {
        let mut rng2 = StdRng::seed_from_u64(2);
        let smp = structure_aware_sampling::sampling::product::sample(&spatial, 8, &mut rng2);
        let points = spatial
            .keys
            .iter()
            .zip(&spatial.points)
            .map(|(wk, p)| (wk.key, p.clone()))
            .collect();
        StoredSample::two_dim(smp, points).expect("points cover all keys")
    };

    vec![
        ("sample-1d", encode_summary(&StoredSample::one_dim(sample))),
        ("sample-2d", encode_summary(&stored2)),
        ("varopt", encode_summary(&varopt)),
        (
            "qdigest",
            encode_summary(&QDigestSummary::build(&spatial, 4, 16)),
        ),
        (
            "wavelet",
            encode_summary(&WaveletSummary::build(&spatial, 4, 4, 20)),
        ),
        (
            "sketch",
            encode_summary(&SketchSummary::build(&spatial, 4, 4, 90, 3)),
        ),
    ]
}

/// Recomputes the trailing CRC so tampered frames survive the envelope
/// check and exercise the per-kind field validation underneath.
fn fix_checksum(bytes: &mut [u8]) {
    let at = bytes.len() - TRAILER_LEN;
    let crc = crc32(&bytes[..at]);
    bytes[at..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn every_fixture_decodes_cleanly() {
    for (name, bytes) in fixtures() {
        let s: Box<dyn Summary> = decode_summary(&bytes)
            .unwrap_or_else(|e| panic!("{name}: pristine frame failed to decode: {e}"));
        assert!(s.item_count() > 0, "{name}");
    }
}

#[test]
fn bit_flip_sweep_rejects_every_corruption() {
    for (name, bytes) in fixtures() {
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_summary(&corrupt).is_err(),
                "{name}: flipping bit {bit} of {} was not rejected",
                bytes.len() * 8
            );
        }
    }
}

#[test]
fn truncation_sweep_rejects_every_prefix() {
    for (name, bytes) in fixtures() {
        for len in 0..bytes.len() {
            assert!(
                decode_summary(&bytes[..len]).is_err(),
                "{name}: {len}-byte prefix was not rejected"
            );
        }
    }
}

#[test]
fn wrong_kind_tag_is_rejected_not_misinterpreted() {
    // Rewriting the kind tag (with a fixed-up checksum) must never let one
    // kind's body reach another kind's decoder successfully: the body
    // either fails section/field validation or reports a clean error.
    let all = fixtures();
    for (name, bytes) in &all {
        for tag in 0u16..8 {
            let mut forged = bytes.clone();
            forged[6..8].copy_from_slice(&tag.to_le_bytes());
            fix_checksum(&mut forged);
            if forged == *bytes {
                continue; // original tag
            }
            assert!(
                decode_summary(&forged).is_err(),
                "{name}: body accepted under forged kind tag {tag}"
            );
        }
    }
}

#[test]
fn future_version_is_rejected() {
    for (name, bytes) in fixtures() {
        let mut forged = bytes.clone();
        forged[4..6].copy_from_slice(&2u16.to_le_bytes());
        fix_checksum(&mut forged);
        assert!(
            matches!(
                decode_summary(&forged),
                Err(CodecError::UnsupportedVersion(2))
            ),
            "{name}: version 2 frame was not rejected as unsupported"
        );
    }
}

#[test]
fn declared_length_lies_are_rejected() {
    for (name, bytes) in fixtures() {
        for delta in [1u64, 8, 1 << 40] {
            let mut forged = bytes.clone();
            let declared = u64::from_le_bytes(forged[8..16].try_into().unwrap()) + delta;
            forged[8..16].copy_from_slice(&declared.to_le_bytes());
            fix_checksum(&mut forged);
            assert!(
                decode_summary(&forged).is_err(),
                "{name}: inflated body length (+{delta}) accepted"
            );
        }
    }
}

#[test]
fn non_finite_payload_values_are_rejected() {
    // Overwrite each 8-byte window with a NaN bit pattern (checksum fixed):
    // decoders must reject smuggled non-finite weights rather than let them
    // poison estimates. Windows that do not decode as a weight may fail for
    // other reasons — any Err is acceptable, a panic is not.
    let nan = f64::NAN.to_bits().to_le_bytes();
    for (name, bytes) in fixtures() {
        let body = 16..bytes.len() - TRAILER_LEN;
        for at in body.clone().step_by(8) {
            if at + 8 > body.end {
                break;
            }
            let mut forged = bytes.clone();
            forged[at..at + 8].copy_from_slice(&nan);
            fix_checksum(&mut forged);
            if forged == *bytes {
                continue;
            }
            // Must not panic; Ok is allowed only if the window did not
            // actually change the frame (handled above) — everything else
            // must keep the decoder's invariants intact.
            if let Ok(s) = decode_summary(&forged) {
                let total = s.total_estimate();
                assert!(
                    total.is_finite(),
                    "{name}: NaN at offset {at} reached a live summary"
                );
            }
        }
    }
}

#[test]
fn crafted_sketch_geometry_cannot_wrap_size_arithmetic() {
    // A hand-built frame with a colossal counter width and a valid CRC:
    // the decoder's size math must reject it with checked arithmetic, not
    // wrap around into a plausible size and blow up allocating.
    use structure_aware_sampling::codec::{encode_frame, Writer};
    for width in [u64::MAX, u64::MAX / 3, (u64::MAX / 24) + 2, 1u64 << 61] {
        let forged = encode_frame(5, |w: &mut Writer| {
            w.section(1, |w| {
                w.put_u32(4); // bits_x
                w.put_u32(4); // bits_y
                w.put_u64(width);
                w.put_u8(3); // rows
            });
            w.section(2, |w| w.put_bytes(&[0u8; 48]));
        });
        assert!(
            decode_summary(&forged).is_err(),
            "sketch width {width} was not rejected"
        );
    }
}

#[test]
fn crafted_varopt_partition_violations_are_rejected() {
    // Valid frame envelope, invalid reservoir state: a "large" key below
    // the threshold must not decode into a biased sampler.
    use structure_aware_sampling::codec::{encode_frame, Writer};
    let forged = encode_frame(2, |w: &mut Writer| {
        w.section(1, |w| {
            w.put_u64(4); // capacity
            w.put_f64(5.0); // tau
            w.put_u64(2); // count
            w.put_f64(6.0); // total weight
        });
        w.section(2, |w| {
            w.put_u64(1);
            w.put_u64(1); // key
            w.put_f64(1.0); // weight < tau
        });
        w.section(3, |w| {
            w.put_u64(1);
            w.put_u64(2);
        });
    });
    assert!(decode_summary(&forged).is_err());
}
