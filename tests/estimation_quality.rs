//! Statistical quality tests: unbiasedness, variance ordering, and tail
//! behaviour of the estimators across samplers — the properties Appendix A
//! claims.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use structure_aware_sampling::core::{bounds, poisson, varopt::VarOptSampler, WeightedKey};
use structure_aware_sampling::sampling;
use structure_aware_sampling::structures::hierarchy::figure1_hierarchy;

fn mixed_data(n: u64, seed: u64) -> Vec<WeightedKey> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let w = if rng.gen_bool(0.05) {
                rng.gen_range(50.0..300.0)
            } else {
                rng.gen_range(0.1..3.0)
            };
            WeightedKey::new(k, w)
        })
        .collect()
}

/// Empirical mean and variance of subset estimates over repeated samples.
fn subset_stats(
    mut draw: impl FnMut(&mut StdRng) -> structure_aware_sampling::core::Sample,
    pred: impl Fn(u64) -> bool + Copy,
    runs: u64,
    seed: u64,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    for _ in 0..runs {
        let est = draw(&mut rng).subset_estimate(pred);
        sum += est;
        sumsq += est * est;
    }
    let mean = sum / runs as f64;
    (mean, sumsq / runs as f64 - mean * mean)
}

#[test]
fn varopt_variance_at_most_poisson() {
    // VarOpt's defining advantage: subset-sum variance no larger than
    // Poisson IPPS at the same expected size.
    let data = mixed_data(300, 1);
    let s = 30;
    let pred = |k: u64| k < 150;
    let runs = 4000;
    let (m_vo, v_vo) = subset_stats(
        |rng| VarOptSampler::sample_slice(s, &data, rng),
        pred,
        runs,
        11,
    );
    let (m_po, v_po) = subset_stats(|rng| poisson::sample(&data, s, rng), pred, runs, 12);
    let truth: f64 = data
        .iter()
        .filter(|wk| pred(wk.key))
        .map(|wk| wk.weight)
        .sum();
    assert!(
        (m_vo - truth).abs() / truth < 0.03,
        "varopt biased: {m_vo} vs {truth}"
    );
    assert!(
        (m_po - truth).abs() / truth < 0.03,
        "poisson biased: {m_po} vs {truth}"
    );
    assert!(
        v_vo < 1.15 * v_po,
        "varopt variance {v_vo} not ≤ poisson variance {v_po}"
    );
}

#[test]
fn structure_aware_variance_no_worse_on_subsets() {
    // Structure-awareness must not hurt arbitrary subset queries: variance
    // comparable to oblivious VarOpt on a non-range subset.
    let data = mixed_data(200, 2);
    let s = 25;
    let pred = |k: u64| k.is_multiple_of(7); // scattered subset, not a range
    let runs = 4000;
    let (m_aw, v_aw) = subset_stats(|rng| sampling::order::sample(&data, s, rng), pred, runs, 21);
    let (m_ob, v_ob) = subset_stats(
        |rng| VarOptSampler::sample_slice(s, &data, rng),
        pred,
        runs,
        22,
    );
    let truth: f64 = data
        .iter()
        .filter(|wk| pred(wk.key))
        .map(|wk| wk.weight)
        .sum();
    assert!((m_aw - truth).abs() / truth < 0.05);
    assert!((m_ob - truth).abs() / truth < 0.05);
    // Allow 50% slack: both are VarOpt; different correlation structure.
    assert!(
        v_aw < 1.5 * v_ob + 1.0,
        "aware subset variance {v_aw} vs oblivious {v_ob}"
    );
}

#[test]
fn range_error_bounded_by_tau_times_discrepancy() {
    // The paper's basic identity: |estimate − truth| = τ·Δ(S, R) for
    // light-key ranges.
    let data = mixed_data(150, 3);
    let s = 20;
    let mut rng = StdRng::seed_from_u64(31);
    let smp = sampling::order::sample(&data, s, &mut rng);
    let tau = smp.tau();
    for (lo, hi) in [(0u64, 49), (50, 99), (20, 120)] {
        let iv = structure_aware_sampling::structures::order::Interval::new(lo, hi);
        let truth: f64 = data
            .iter()
            .filter(|wk| iv.contains(wk.key) && wk.weight < tau)
            .map(|wk| wk.weight)
            .sum();
        let est: f64 = smp
            .iter()
            .filter(|e| iv.contains(e.key) && e.weight < tau)
            .map(|e| e.adjusted_weight)
            .sum();
        let d = sampling::order::interval_discrepancy(&smp, &data, s, iv, |k| k);
        // Light-key part only, and heavy keys are exact; over the light
        // part the identity holds up to the heavy/light classification.
        assert!(
            (est - truth).abs() <= tau * (d + 1.0) + 1e-6,
            "[{lo},{hi}]: err {} vs τΔ {}",
            (est - truth).abs(),
            tau * d
        );
    }
}

#[test]
fn chernoff_bounds_hold_empirically_for_varopt() {
    // Tail bounds (Eqns 2-3) apply to VarOpt samples: empirical exceedance
    // probabilities are dominated by the bound.
    let data: Vec<WeightedKey> = (0..200).map(|k| WeightedKey::new(k, 1.0)).collect();
    let s = 40;
    let pred = |k: u64| k < 100; // mu = 20
    let mu = 20.0;
    let runs = 20_000;
    let mut rng = StdRng::seed_from_u64(41);
    let mut exceed_28 = 0usize;
    for _ in 0..runs {
        let smp = VarOptSampler::sample_slice(s, &data, &mut rng);
        if smp.subset_count(pred) >= 28 {
            exceed_28 += 1;
        }
    }
    let emp = exceed_28 as f64 / runs as f64;
    let bound = bounds::chernoff_upper(mu, 28.0);
    assert!(
        emp <= bound + 0.01,
        "empirical {emp} exceeds Chernoff bound {bound}"
    );
}

#[test]
fn hierarchy_sample_unbiased_per_node() {
    // Unbiasedness of node-weight estimates in the Figure 1 hierarchy.
    let h = figure1_hierarchy();
    let w = [3.0, 6.0, 4.0, 7.0, 1.0, 8.0, 4.0, 2.0, 3.0, 2.0];
    let data: Vec<WeightedKey> = w
        .iter()
        .enumerate()
        .map(|(i, &wt)| WeightedKey::new(i as u64 + 1, wt))
        .collect();
    let runs = 30_000;
    let mut rng = StdRng::seed_from_u64(51);
    let mut acc = [0.0; 3];
    // Nodes: A = keys 1-4 (20), M = key 5 (1), C = keys 6-10 (19).
    for _ in 0..runs {
        let smp = sampling::hierarchy::sample(&data, &h, 4, &mut rng);
        acc[0] += smp.subset_estimate(|k| (1..=4).contains(&k));
        acc[1] += smp.subset_estimate(|k| k == 5);
        acc[2] += smp.subset_estimate(|k| (6..=10).contains(&k));
    }
    let means: Vec<f64> = acc.iter().map(|a| a / runs as f64).collect();
    for (mean, truth) in means.iter().zip([20.0, 1.0, 19.0]) {
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "node estimate {mean} vs {truth}"
        );
    }
}
