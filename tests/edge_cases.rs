//! Edge-case and failure-injection tests across the public API: degenerate
//! inputs that a downstream user will eventually feed in.

use rand::rngs::StdRng;
use rand::SeedableRng;

use structure_aware_sampling::core::varopt::VarOptSampler;
use structure_aware_sampling::core::{ipps, WeightedKey};
use structure_aware_sampling::sampling;
use structure_aware_sampling::sampling::product::SpatialData;
use structure_aware_sampling::structures::product::BoxRange;

#[test]
fn all_zero_weights_yield_empty_samples() {
    let data: Vec<WeightedKey> = (0..50).map(|k| WeightedKey::new(k, 0.0)).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let smp = sampling::order::sample(&data, 5, &mut rng);
    assert_eq!(smp.len(), 0);
    let smp = VarOptSampler::sample_slice(5, &data, &mut rng);
    assert_eq!(smp.len(), 0);
    assert_eq!(smp.total_estimate(), 0.0);
}

#[test]
fn single_heavy_among_zeros() {
    let mut data: Vec<WeightedKey> = (0..50).map(|k| WeightedKey::new(k, 0.0)).collect();
    data[25] = WeightedKey::new(25, 7.0);
    let mut rng = StdRng::seed_from_u64(2);
    let smp = sampling::order::sample(&data, 3, &mut rng);
    assert_eq!(smp.len(), 1);
    assert!(smp.contains(25));
    assert_eq!(smp.total_estimate(), 7.0);
}

#[test]
fn s_equals_one() {
    let data: Vec<WeightedKey> = (0..100)
        .map(|k| WeightedKey::new(k, 1.0 + (k % 3) as f64))
        .collect();
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(seed);
        let smp = sampling::order::sample(&data, 1, &mut rng);
        assert_eq!(smp.len(), 1);
        // The lone adjusted weight is the total-weight estimate.
        let est = smp.total_estimate();
        let truth: f64 = data.iter().map(|wk| wk.weight).sum();
        assert!(est > 0.0 && est < 3.0 * truth);
    }
}

#[test]
fn identical_weights_tau_is_total_over_s() {
    let data: Vec<WeightedKey> = (0..40).map(|k| WeightedKey::new(k, 2.5)).collect();
    let tau = ipps::threshold_for_keys(&data, 10.0);
    assert!((tau - 10.0).abs() < 1e-9); // 100/10
}

#[test]
fn extreme_weight_ratios() {
    // 1e12 dynamic range: no NaNs, heavy key always kept, size exact.
    let mut data: Vec<WeightedKey> = (0..200).map(|k| WeightedKey::new(k, 1e-6)).collect();
    data[0] = WeightedKey::new(0, 1e6);
    let mut rng = StdRng::seed_from_u64(3);
    let smp = sampling::order::sample(&data, 10, &mut rng);
    assert_eq!(smp.len(), 10);
    assert!(smp.contains(0));
    let e = smp.iter().find(|e| e.key == 0).unwrap();
    assert_eq!(e.adjusted_weight, 1e6);
    assert!(smp.iter().all(|e| e.adjusted_weight.is_finite()));
}

#[test]
fn two_pass_on_tiny_data() {
    let data = SpatialData::from_xyw(&[(1, 1, 2.0), (2, 2, 3.0)]);
    let mut rng = StdRng::seed_from_u64(4);
    for s in [1, 2, 10] {
        let smp = sampling::two_pass::sample_product(&data, s, 5, &mut rng);
        assert_eq!(smp.len(), s.min(2), "s={s}");
    }
}

#[test]
fn two_pass_all_identical_points() {
    let rows: Vec<(u64, u64, f64)> = (0..100).map(|_| (7, 7, 1.0)).collect();
    let data = SpatialData::from_xyw(&rows);
    let mut rng = StdRng::seed_from_u64(5);
    let smp = sampling::two_pass::sample_product(&data, 10, 5, &mut rng);
    assert_eq!(smp.len(), 10);
    let q = BoxRange::xy(7, 7, 7, 7);
    let est = sas_sampling_estimate(&smp, &data, &q);
    assert!((est - 100.0).abs() < 1e-6);
}

fn sas_sampling_estimate(
    smp: &structure_aware_sampling::core::Sample,
    data: &SpatialData,
    q: &BoxRange,
) -> f64 {
    sampling::product::estimate_box(smp, data, q)
}

#[test]
fn streaming_threshold_single_item() {
    let mut st = ipps::StreamingThreshold::new(1);
    st.push(5.0);
    // One item, s = 1: τ solves min(1, 5/τ) = 1 → τ ≤ 5; the stream rule
    // gives L/(s−|H|) after evicting: τ = 5 exactly.
    let tau = st.finish();
    assert!((tau - 5.0).abs() < 1e-9);
}

#[test]
fn hierarchy_with_larger_s_than_leaves() {
    use structure_aware_sampling::structures::hierarchy::figure1_hierarchy;
    let h = figure1_hierarchy();
    let data: Vec<WeightedKey> = (1..=10).map(|k| WeightedKey::new(k, k as f64)).collect();
    let mut rng = StdRng::seed_from_u64(6);
    let smp = sampling::hierarchy::sample(&data, &h, 100, &mut rng);
    assert_eq!(smp.len(), 10); // everything kept exactly
    assert!((smp.total_estimate() - 55.0).abs() < 1e-9);
}

#[test]
fn disjoint_with_one_key_per_many_ranges() {
    let data: Vec<WeightedKey> = (0..5).map(|k| WeightedKey::new(k, 1.0)).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let smp = sampling::disjoint::sample(&data, 2, |k| k * 1000, &mut rng);
    assert_eq!(smp.len(), 2);
}

#[test]
fn subset_estimate_of_absent_keys_is_zero() {
    let data: Vec<WeightedKey> = (0..30).map(|k| WeightedKey::new(k, 1.0)).collect();
    let mut rng = StdRng::seed_from_u64(8);
    let smp = sampling::order::sample(&data, 5, &mut rng);
    assert_eq!(smp.subset_estimate(|k| k > 1000), 0.0);
}

#[test]
fn fractional_tau_keys_straddling_threshold() {
    // Keys exactly at the threshold boundary: p = 1 exactly. No panics,
    // exact size, certain keys kept.
    let data = vec![
        WeightedKey::new(1, 4.0),
        WeightedKey::new(2, 4.0),
        WeightedKey::new(3, 2.0),
        WeightedKey::new(4, 2.0),
    ];
    // s = 3: τ = 4 → keys 1,2 certain (p=1), keys 3,4 p=0.5 each.
    let tau = ipps::threshold_for_keys(&data, 3.0);
    assert!((tau - 4.0).abs() < 1e-9);
    for seed in 0..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        let smp = sampling::order::sample(&data, 3, &mut rng);
        assert_eq!(smp.len(), 3);
        assert!(smp.contains(1) && smp.contains(2));
    }
}
