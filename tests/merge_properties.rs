//! Statistical certification of the mergeable-summary subsystem: across
//! ≥ 100 seeds, merged VarOpt samples must stay unbiased (mean HT estimates
//! within a confidence interval of true subset sums) and keep interval
//! discrepancy within the `O(log n)`-flavored bound the tier-1 suites use —
//! serial order samples guarantee Δ < 2 per interval, and each binary merge
//! level adds less than 2 more, so a `2^L`-shard sample must stay within
//! `2·(L + 1)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use structure_aware_sampling::core::{total_weight, VarOptSampler, WeightedKey};
use structure_aware_sampling::sampling::sharded::{
    merge_samples, summarize_sharded, ShardTopology, ShardedConfig,
};
use structure_aware_sampling::sampling::{order, IppsSetup};
use structure_aware_sampling::structures::order::Interval;

fn mixed_data(n: u64, seed: u64) -> Vec<WeightedKey> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let w = if rng.gen_bool(0.06) {
                rng.gen_range(40.0..250.0)
            } else {
                rng.gen_range(0.1..3.0)
            };
            WeightedKey::new(k, w)
        })
        .collect()
}

/// Streams `data` split into `parts` equal chunks through independent
/// VarOpt reservoirs and merges them left to right.
fn varopt_merged(data: &[WeightedKey], s: usize, parts: usize, rng: &mut StdRng) -> VarOptSampler {
    let per = data.len().div_ceil(parts).max(1);
    let mut chunks = data.chunks(per);
    let mut acc = VarOptSampler::new(s);
    for wk in chunks.next().unwrap_or(&[]) {
        acc.push(wk.key, wk.weight, rng);
    }
    for chunk in chunks {
        let mut part = VarOptSampler::new(s);
        for wk in chunk {
            part.push(wk.key, wk.weight, rng);
        }
        acc.merge(part, rng);
    }
    acc
}

#[test]
fn merged_varopt_is_valid_sample_across_seeds() {
    // Structural validity over 120 seeds: exact size, threshold domination,
    // heavy keys kept, totals conserved exactly.
    let mut data = mixed_data(900, 7);
    data[450] = WeightedKey::new(450, 1e6);
    let truth = total_weight(&data);
    let s = 40;
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let merged = varopt_merged(&data, s, 3, &mut rng);
        assert_eq!(merged.held(), s, "seed {seed}");
        let sample = merged.finish();
        assert_eq!(sample.len(), s, "seed {seed}");
        assert!(sample.contains(450), "seed {seed}: heavy key dropped");
        let est = sample.total_estimate();
        assert!(
            (est - truth).abs() / truth < 1e-9,
            "seed {seed}: total {est} vs {truth}"
        );
    }
}

#[test]
fn merged_varopt_unbiased_within_confidence_interval() {
    // Mean subset estimates over many independent merge runs must land
    // within ~4 standard errors of the truth.
    let data = mixed_data(600, 11);
    type Pred = fn(u64) -> bool;
    let subsets: [(&str, Pred); 3] = [
        ("prefix", |k| k < 200),
        ("middle", |k| (250..420).contains(&k)),
        ("scattered", |k| k % 5 == 0),
    ];
    let runs = 500u64;
    let mut acc = [0.0f64; 3];
    let mut acc_sq = [0.0f64; 3];
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(40_000 + seed);
        let sample = varopt_merged(&data, 50, 4, &mut rng).finish();
        for (i, (_, pred)) in subsets.iter().enumerate() {
            let est = sample.subset_estimate(pred);
            acc[i] += est;
            acc_sq[i] += est * est;
        }
    }
    for (i, (name, pred)) in subsets.iter().enumerate() {
        let truth: f64 = data
            .iter()
            .filter(|wk| pred(wk.key))
            .map(|wk| wk.weight)
            .sum();
        let mean = acc[i] / runs as f64;
        let var = (acc_sq[i] / runs as f64 - mean * mean).max(0.0);
        let stderr = (var / runs as f64).sqrt();
        assert!(
            (mean - truth).abs() <= 4.0 * stderr + 1e-9 * truth,
            "{name}: mean {mean} vs truth {truth} (stderr {stderr})"
        );
    }
}

#[test]
fn sharded_sample_discrepancy_within_log_shards_bound() {
    // 4 shards = 2 merge levels: every interval must satisfy
    // Δ < 2·(log₂(shards) + 1) = 6, measured against the final sample's own
    // IPPS probabilities (adjusted-weight error = τ_final · Δ).
    let s = 30;
    let n = 480u64;
    for seed in 0..110u64 {
        let data = mixed_data(n, 3000 + seed);
        let truth_total = total_weight(&data);
        let cfg = ShardedConfig::key_range(4, seed);
        let sample = summarize_sharded(&data, s, &cfg);
        assert_eq!(sample.len(), s, "seed {seed}");
        assert!(
            (sample.total_estimate() - truth_total).abs() / truth_total < 1e-9,
            "seed {seed}: total not conserved"
        );
        let tau = sample.tau();
        assert!(tau > 0.0, "seed {seed}");
        let bound = 2.0 * ((4f64).log2() + 1.0); // 6
        for (lo, hi) in [(0, n - 1), (0, n / 2), (n / 4, 3 * n / 4), (n / 3, n - 1)] {
            let iv = Interval::new(lo, hi);
            let truth: f64 = data
                .iter()
                .filter(|wk| iv.contains(wk.key))
                .map(|wk| wk.weight)
                .sum();
            let est = sample.subset_estimate(|k| iv.contains(k));
            // Error of an HT estimate is τ·Δ plus the (exact) heavy part,
            // so |err|/τ bounds the light-key discrepancy.
            let delta = (est - truth).abs() / tau;
            assert!(
                delta < bound + 1e-6,
                "seed {seed} interval [{lo},{hi}]: Δ = {delta} ≥ {bound}"
            );
        }
    }
}

#[test]
fn pairwise_sample_merge_discrepancy_adds_less_than_two() {
    // One merge level: serial halves guarantee Δ < 2 each; the merged
    // sample must stay below 4 on every interval, across 100 seeds.
    let n = 360u64;
    let s = 24;
    for seed in 0..100u64 {
        let data = mixed_data(n, 7000 + seed);
        let mid = (n / 2) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = order::sample(&data[..mid], s, &mut rng);
        let b = order::sample(&data[mid..], s, &mut rng);
        let merged = merge_samples(a, b, s, &mut rng);
        assert_eq!(merged.len(), s, "seed {seed}");
        let tau = merged.tau();
        for (lo, hi) in [(0, n - 1), (n / 4, 3 * n / 4), (0, n / 3), (n / 2, n - 1)] {
            let iv = Interval::new(lo, hi);
            let truth: f64 = data
                .iter()
                .filter(|wk| iv.contains(wk.key))
                .map(|wk| wk.weight)
                .sum();
            let est = merged.subset_estimate(|k| iv.contains(k));
            let delta = (est - truth).abs() / tau;
            assert!(
                delta < 4.0 + 1e-6,
                "seed {seed} interval [{lo},{hi}]: Δ = {delta}"
            );
        }
    }
}

#[test]
fn sharded_matches_serial_statistically() {
    // The sharded driver must agree with the serial sampler in
    // distribution: mean estimates within the same tolerance of the truth,
    // and mean absolute error within a constant factor.
    let data = mixed_data(800, 13);
    let iv = Interval::new(200, 599);
    let truth: f64 = data
        .iter()
        .filter(|wk| iv.contains(wk.key))
        .map(|wk| wk.weight)
        .sum();
    let runs = 300u64;
    let s = 60;
    let (mut acc_serial, mut acc_sharded) = (0.0, 0.0);
    let (mut abs_serial, mut abs_sharded) = (0.0, 0.0);
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(90_000 + seed);
        let serial = order::sample(&data, s, &mut rng);
        let es = serial.subset_estimate(|k| iv.contains(k));
        acc_serial += es;
        abs_serial += (es - truth).abs();

        let cfg = ShardedConfig {
            shards: 4,
            topology: ShardTopology::KeyRange,
            seed,
        };
        let sharded = summarize_sharded(&data, s, &cfg);
        let eh = sharded.subset_estimate(|k| iv.contains(k));
        acc_sharded += eh;
        abs_sharded += (eh - truth).abs();
    }
    let mean_serial = acc_serial / runs as f64;
    let mean_sharded = acc_sharded / runs as f64;
    assert!(
        (mean_serial - truth).abs() / truth < 0.02,
        "serial mean {mean_serial} vs {truth}"
    );
    assert!(
        (mean_sharded - truth).abs() / truth < 0.02,
        "sharded mean {mean_sharded} vs {truth}"
    );
    // Sharding trades a bounded amount of accuracy for parallelism; the
    // merge analysis (log₂ shards extra discrepancy) caps the factor at 3
    // for 4 shards, with slack for noise.
    assert!(
        abs_sharded / runs as f64 <= 3.0 * (abs_serial / runs as f64) + 1e-9,
        "sharded MAE {} vs serial {}",
        abs_sharded / runs as f64,
        abs_serial / runs as f64
    );
}

#[test]
fn merged_varopt_inclusion_follows_effective_ipps() {
    // After a merge at threshold τ', each surviving light key's inclusion
    // frequency must track min(1, w̃/τ') — the IPPS property w.r.t.
    // effective weights. Checked on a small fixed dataset where τ' is
    // stable across runs.
    let data: Vec<WeightedKey> = (0..24)
        .map(|k| WeightedKey::new(k, 1.0 + (k % 6) as f64))
        .collect();
    let s = 6;
    let runs = 30_000;
    let mut hits = vec![0usize; data.len()];
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..runs {
        let sample = varopt_merged(&data, s, 2, &mut rng).finish();
        for e in sample.iter() {
            hits[e.key as usize] += 1;
        }
    }
    // Merged inclusion probabilities are IPPS for the *whole* data set:
    // compare against the offline setup (both halves see the same weight
    // multiset, so effective IPPS coincides with offline IPPS here in
    // expectation; allow a generous tolerance for merge noise).
    let setup = IppsSetup::compute(&data, s);
    for (k, &h) in hits.iter().enumerate() {
        let freq = h as f64 / runs as f64;
        let p = setup.probability_of(k as u64);
        assert!(
            (freq - p).abs() < 0.06,
            "key {k}: freq {freq} vs offline p {p}"
        );
    }
}
