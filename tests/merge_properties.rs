//! Statistical certification of the mergeable-summary subsystem: across
//! ≥ 100 seeds, merged VarOpt samples must stay unbiased (mean HT estimates
//! within a confidence interval of true subset sums) and keep interval
//! discrepancy within the `O(log n)`-flavored bound the tier-1 suites use —
//! serial order samples guarantee Δ < 2 per interval, and each binary merge
//! level adds less than 2 more, so a `2^L`-shard sample must stay within
//! `2·(L + 1)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use structure_aware_sampling::core::{total_weight, VarOptSampler, WeightedKey};
use structure_aware_sampling::sampling::sharded::{
    merge_samples, summarize_sharded, ShardTopology, ShardedConfig,
};
use structure_aware_sampling::sampling::{order, IppsSetup};
use structure_aware_sampling::structures::order::Interval;

fn mixed_data(n: u64, seed: u64) -> Vec<WeightedKey> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let w = if rng.gen_bool(0.06) {
                rng.gen_range(40.0..250.0)
            } else {
                rng.gen_range(0.1..3.0)
            };
            WeightedKey::new(k, w)
        })
        .collect()
}

/// Streams `data` split into `parts` equal chunks through independent
/// VarOpt reservoirs and merges them left to right.
fn varopt_merged(data: &[WeightedKey], s: usize, parts: usize, rng: &mut StdRng) -> VarOptSampler {
    let per = data.len().div_ceil(parts).max(1);
    let mut chunks = data.chunks(per);
    let mut acc = VarOptSampler::new(s);
    for wk in chunks.next().unwrap_or(&[]) {
        acc.push(wk.key, wk.weight, rng);
    }
    for chunk in chunks {
        let mut part = VarOptSampler::new(s);
        for wk in chunk {
            part.push(wk.key, wk.weight, rng);
        }
        acc.merge(part, rng);
    }
    acc
}

#[test]
fn merged_varopt_is_valid_sample_across_seeds() {
    // Structural validity over 120 seeds: exact size, threshold domination,
    // heavy keys kept, totals conserved exactly.
    let mut data = mixed_data(900, 7);
    data[450] = WeightedKey::new(450, 1e6);
    let truth = total_weight(&data);
    let s = 40;
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let merged = varopt_merged(&data, s, 3, &mut rng);
        assert_eq!(merged.held(), s, "seed {seed}");
        let sample = merged.finish();
        assert_eq!(sample.len(), s, "seed {seed}");
        assert!(sample.contains(450), "seed {seed}: heavy key dropped");
        let est = sample.total_estimate();
        assert!(
            (est - truth).abs() / truth < 1e-9,
            "seed {seed}: total {est} vs {truth}"
        );
    }
}

#[test]
fn merged_varopt_unbiased_within_confidence_interval() {
    // Mean subset estimates over many independent merge runs must land
    // within ~4 standard errors of the truth.
    let data = mixed_data(600, 11);
    type Pred = fn(u64) -> bool;
    let subsets: [(&str, Pred); 3] = [
        ("prefix", |k| k < 200),
        ("middle", |k| (250..420).contains(&k)),
        ("scattered", |k| k % 5 == 0),
    ];
    let runs = 500u64;
    let mut acc = [0.0f64; 3];
    let mut acc_sq = [0.0f64; 3];
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(40_000 + seed);
        let sample = varopt_merged(&data, 50, 4, &mut rng).finish();
        for (i, (_, pred)) in subsets.iter().enumerate() {
            let est = sample.subset_estimate(pred);
            acc[i] += est;
            acc_sq[i] += est * est;
        }
    }
    for (i, (name, pred)) in subsets.iter().enumerate() {
        let truth: f64 = data
            .iter()
            .filter(|wk| pred(wk.key))
            .map(|wk| wk.weight)
            .sum();
        let mean = acc[i] / runs as f64;
        let var = (acc_sq[i] / runs as f64 - mean * mean).max(0.0);
        let stderr = (var / runs as f64).sqrt();
        assert!(
            (mean - truth).abs() <= 4.0 * stderr + 1e-9 * truth,
            "{name}: mean {mean} vs truth {truth} (stderr {stderr})"
        );
    }
}

#[test]
fn sharded_sample_discrepancy_within_log_shards_bound() {
    // 4 shards = 2 merge levels: every interval must satisfy
    // Δ < 2·(log₂(shards) + 1) = 6, measured against the final sample's own
    // IPPS probabilities (adjusted-weight error = τ_final · Δ).
    let s = 30;
    let n = 480u64;
    for seed in 0..110u64 {
        let data = mixed_data(n, 3000 + seed);
        let truth_total = total_weight(&data);
        let cfg = ShardedConfig::key_range(4, seed);
        let sample = summarize_sharded(&data, s, &cfg);
        assert_eq!(sample.len(), s, "seed {seed}");
        assert!(
            (sample.total_estimate() - truth_total).abs() / truth_total < 1e-9,
            "seed {seed}: total not conserved"
        );
        let tau = sample.tau();
        assert!(tau > 0.0, "seed {seed}");
        let bound = 2.0 * ((4f64).log2() + 1.0); // 6
        for (lo, hi) in [(0, n - 1), (0, n / 2), (n / 4, 3 * n / 4), (n / 3, n - 1)] {
            let iv = Interval::new(lo, hi);
            let truth: f64 = data
                .iter()
                .filter(|wk| iv.contains(wk.key))
                .map(|wk| wk.weight)
                .sum();
            let est = sample.subset_estimate(|k| iv.contains(k));
            // Error of an HT estimate is τ·Δ plus the (exact) heavy part,
            // so |err|/τ bounds the light-key discrepancy.
            let delta = (est - truth).abs() / tau;
            assert!(
                delta < bound + 1e-6,
                "seed {seed} interval [{lo},{hi}]: Δ = {delta} ≥ {bound}"
            );
        }
    }
}

#[test]
fn pairwise_sample_merge_discrepancy_adds_less_than_two() {
    // One merge level: serial halves guarantee Δ < 2 each; the merged
    // sample must stay below 4 on every interval, across 100 seeds.
    let n = 360u64;
    let s = 24;
    for seed in 0..100u64 {
        let data = mixed_data(n, 7000 + seed);
        let mid = (n / 2) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = order::sample(&data[..mid], s, &mut rng);
        let b = order::sample(&data[mid..], s, &mut rng);
        let merged = merge_samples(a, b, s, &mut rng);
        assert_eq!(merged.len(), s, "seed {seed}");
        let tau = merged.tau();
        for (lo, hi) in [(0, n - 1), (n / 4, 3 * n / 4), (0, n / 3), (n / 2, n - 1)] {
            let iv = Interval::new(lo, hi);
            let truth: f64 = data
                .iter()
                .filter(|wk| iv.contains(wk.key))
                .map(|wk| wk.weight)
                .sum();
            let est = merged.subset_estimate(|k| iv.contains(k));
            let delta = (est - truth).abs() / tau;
            assert!(
                delta < 4.0 + 1e-6,
                "seed {seed} interval [{lo},{hi}]: Δ = {delta}"
            );
        }
    }
}

#[test]
fn sharded_matches_serial_statistically() {
    // The sharded driver must agree with the serial sampler in
    // distribution: mean estimates within the same tolerance of the truth,
    // and mean absolute error within a constant factor.
    let data = mixed_data(800, 13);
    let iv = Interval::new(200, 599);
    let truth: f64 = data
        .iter()
        .filter(|wk| iv.contains(wk.key))
        .map(|wk| wk.weight)
        .sum();
    let runs = 300u64;
    let s = 60;
    let (mut acc_serial, mut acc_sharded) = (0.0, 0.0);
    let (mut abs_serial, mut abs_sharded) = (0.0, 0.0);
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(90_000 + seed);
        let serial = order::sample(&data, s, &mut rng);
        let es = serial.subset_estimate(|k| iv.contains(k));
        acc_serial += es;
        abs_serial += (es - truth).abs();

        let cfg = ShardedConfig {
            shards: 4,
            topology: ShardTopology::KeyRange,
            seed,
        };
        let sharded = summarize_sharded(&data, s, &cfg);
        let eh = sharded.subset_estimate(|k| iv.contains(k));
        acc_sharded += eh;
        abs_sharded += (eh - truth).abs();
    }
    let mean_serial = acc_serial / runs as f64;
    let mean_sharded = acc_sharded / runs as f64;
    assert!(
        (mean_serial - truth).abs() / truth < 0.02,
        "serial mean {mean_serial} vs {truth}"
    );
    assert!(
        (mean_sharded - truth).abs() / truth < 0.02,
        "sharded mean {mean_sharded} vs {truth}"
    );
    // Sharding trades a bounded amount of accuracy for parallelism; the
    // merge analysis (log₂ shards extra discrepancy) caps the factor at 3
    // for 4 shards, with slack for noise.
    assert!(
        abs_sharded / runs as f64 <= 3.0 * (abs_serial / runs as f64) + 1e-9,
        "sharded MAE {} vs serial {}",
        abs_sharded / runs as f64,
        abs_serial / runs as f64
    );
}

#[test]
fn merged_varopt_inclusion_follows_effective_ipps() {
    // After a merge at threshold τ', each surviving light key's inclusion
    // frequency must track min(1, w̃/τ') — the IPPS property w.r.t.
    // effective weights. Checked on a small fixed dataset where τ' is
    // stable across runs.
    let data: Vec<WeightedKey> = (0..24)
        .map(|k| WeightedKey::new(k, 1.0 + (k % 6) as f64))
        .collect();
    let s = 6;
    let runs = 30_000;
    let mut hits = vec![0usize; data.len()];
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..runs {
        let sample = varopt_merged(&data, s, 2, &mut rng).finish();
        for e in sample.iter() {
            hits[e.key as usize] += 1;
        }
    }
    // Merged inclusion probabilities are IPPS for the *whole* data set:
    // compare against the offline setup (both halves see the same weight
    // multiset, so effective IPPS coincides with offline IPPS here in
    // expectation; allow a generous tolerance for merge noise).
    let setup = IppsSetup::compute(&data, s);
    for (k, &h) in hits.iter().enumerate() {
        let freq = h as f64 / runs as f64;
        let p = setup.probability_of(k as u64);
        assert!(
            (freq - p).abs() < 0.06,
            "key {k}: freq {freq} vs offline p {p}"
        );
    }
}

// ---------------------------------------------------------------------------
// Persistence properties: encoding is transparent. For every summary kind,
// encode→decode→query must equal the original's answers exactly (bit-level),
// and merging decoded summaries must equal the same merge performed on the
// in-memory objects — persistence cannot change a single estimate.
// ---------------------------------------------------------------------------

use structure_aware_sampling::sampling::product::SpatialData;
use structure_aware_sampling::summaries::countsketch::SketchSummary;
use structure_aware_sampling::summaries::qdigest::QDigestSummary;
use structure_aware_sampling::summaries::wavelet::WaveletSummary;
use structure_aware_sampling::summaries::{decode_summary, encode_summary, StoredSample};
use structure_aware_sampling::Summary;

fn spatial_data(n: usize, bits: u32, seed: u64) -> SpatialData {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = 1u64 << bits;
    let rows: Vec<(u64, u64, f64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0..side),
                rng.gen_range(0..side),
                rng.gen_range(0.2..8.0),
            )
        })
        .collect();
    SpatialData::from_xyw(&rows)
}

fn query_battery(dims: usize, seed: u64) -> Vec<Vec<(u64, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![vec![(0, u64::MAX); dims]];
    for _ in 0..25 {
        out.push(
            (0..dims)
                .map(|_| {
                    let lo = rng.gen_range(0..400u64);
                    (lo, lo + rng.gen_range(0..200u64))
                })
                .collect(),
        );
    }
    out
}

/// Asserts two erased summaries answer the whole battery bit-identically.
fn assert_identical_answers(name: &str, a: &dyn Summary, b: &dyn Summary) {
    assert_eq!(a.dims(), b.dims(), "{name}");
    assert_eq!(a.item_count(), b.item_count(), "{name}");
    assert_eq!(a.tau(), b.tau(), "{name}");
    for range in query_battery(a.dims(), 7) {
        let (ea, eb) = (a.range_sum(&range), b.range_sum(&range));
        assert_eq!(
            ea.to_bits(),
            eb.to_bits(),
            "{name}: range {range:?}: {ea} vs {eb}"
        );
    }
}

/// One in-memory summary of every kind over deterministic data. The
/// sketch's hash seeds come from `sketch_seed`: two sketches merge only
/// when they share it.
fn kind_fixtures_seeded(seed: u64, sketch_seed: u64) -> Vec<(&'static str, Box<dyn Summary>)> {
    let data = mixed_data(500, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let sample = order::sample(&data, 60, &mut rng);
    let mut varopt = VarOptSampler::new(40);
    for wk in &data {
        varopt.push(wk.key, wk.weight, &mut rng);
    }
    let sp = spatial_data(300, 9, seed ^ 0x77);
    vec![
        (
            "sample",
            Box::new(StoredSample::one_dim(sample)) as Box<dyn Summary>,
        ),
        ("varopt", Box::new(varopt)),
        ("qdigest", Box::new(QDigestSummary::build(&sp, 9, 60))),
        ("wavelet", Box::new(WaveletSummary::build(&sp, 9, 9, 80))),
        (
            "sketch",
            Box::new(SketchSummary::build(&sp, 9, 9, 2000, sketch_seed)),
        ),
    ]
}

fn kind_fixtures(seed: u64) -> Vec<(&'static str, Box<dyn Summary>)> {
    kind_fixtures_seeded(seed, seed)
}

#[test]
fn encode_decode_query_is_exact_for_every_kind_across_seeds() {
    for seed in 0..20u64 {
        for (name, original) in kind_fixtures(seed) {
            let bytes = encode_summary(original.as_ref());
            let decoded =
                decode_summary(&bytes).unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_identical_answers(name, original.as_ref(), decoded.as_ref());
            // Encoding is canonical: decode→encode reproduces the bytes.
            assert_eq!(
                bytes,
                encode_summary(decoded.as_ref()),
                "{name} seed {seed}"
            );
        }
    }
}

#[test]
fn decoded_merge_equals_in_memory_merge_for_every_kind() {
    // Build two summaries per kind over disjoint data, then merge twice:
    // once with the in-memory objects, once with decoded copies — with the
    // same RNG seed the results must answer queries bit-identically.
    for seed in 0..10u64 {
        let halves = |half: u64| kind_fixtures_seeded(seed * 2 + half, seed);
        for ((name, a), (_, b)) in halves(0).into_iter().zip(halves(1)) {
            let (bytes_a, bytes_b) = (encode_summary(a.as_ref()), encode_summary(b.as_ref()));
            let mut mem = a;
            let mut rng_mem = StdRng::seed_from_u64(900 + seed);
            mem.merge_in_place(b, Some(50), &mut rng_mem)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: in-memory merge: {e}"));

            let mut disk = decode_summary(&bytes_a).unwrap();
            let mut rng_disk = StdRng::seed_from_u64(900 + seed);
            disk.merge_in_place(decode_summary(&bytes_b).unwrap(), Some(50), &mut rng_disk)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: decoded merge: {e}"));

            assert_identical_answers(name, mem.as_ref(), disk.as_ref());
        }
    }
}

#[test]
fn budgeted_sample_merge_roundtrip_conserves_invariants() {
    // The full distributed pipeline in miniature: shard → encode → decode →
    // budgeted merge; size exact, totals conserved, estimates unbiased
    // within the discrepancy envelope (reuses the tier-1 bound: 1 merge
    // level ⇒ Δ < 4 per interval).
    let s = 30;
    for seed in 0..60u64 {
        let data = mixed_data(400, 5000 + seed);
        let mid = data.len() / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = StoredSample::one_dim(order::sample(&data[..mid], s, &mut rng));
        let b = StoredSample::one_dim(order::sample(&data[mid..], s, &mut rng));
        let mut merged = decode_summary(&encode_summary(&a)).unwrap();
        merged
            .merge_in_place(
                decode_summary(&encode_summary(&b)).unwrap(),
                Some(s),
                &mut rng,
            )
            .unwrap();
        assert_eq!(merged.item_count(), s, "seed {seed}");
        let truth = total_weight(&data);
        let est = merged.range_sum(&[(0, u64::MAX)]);
        assert!(
            (est - truth).abs() / truth < 1e-9,
            "seed {seed}: total {est} vs {truth}"
        );
        let tau = merged.tau().expect("sample kind reports tau");
        for (lo, hi) in [(0u64, 199u64), (100, 299), (200, 399)] {
            let truth: f64 = data
                .iter()
                .filter(|wk| (lo..=hi).contains(&wk.key))
                .map(|wk| wk.weight)
                .sum();
            let delta = (merged.range_sum(&[(lo, hi)]) - truth).abs() / tau;
            assert!(delta < 4.0 + 1e-6, "seed {seed} [{lo},{hi}]: Δ = {delta}");
        }
    }
}
