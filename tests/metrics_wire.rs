//! Wire-format certification for the `REQ_METRICS` exchange: committed
//! golden frames pin the request and response encodings
//! (tests/golden/metrics_req_v1.sas, metrics_resp_v1.sas), and a bit-flip
//! sweep mirrors tests/query_wire.rs — a corrupted frame must surface as
//! `Err`, never a panic. The response fixture exercises every layer of the
//! registry snapshot layout: bare and labeled counters, an empty histogram,
//! and a sparse multi-bucket one.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```sh
//! SAS_REGEN_GOLDEN=1 cargo test --test metrics_wire
//! ```

use std::path::PathBuf;

use structure_aware_sampling::obs::{HistogramSnapshot, MetricsReport};
use structure_aware_sampling::store::wire::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};

const REQ_METRICS: u16 = structure_aware_sampling::codec::proto::REQ_METRICS;

/// The pinned registry snapshot: bare and labeled counters, an empty
/// histogram, and a sparse one with buckets spread across the range.
fn golden_report() -> MetricsReport {
    MetricsReport {
        counters: vec![
            ("sas_conns_accepted_total".into(), 10_240),
            ("sas_requests_total{tag=\"query\"}".into(), 1_000_000),
            ("sas_store_cache_hits_total{dataset=\"cpu\"}".into(), 77),
        ],
        histograms: vec![
            (
                "sas_compaction_ns".into(),
                HistogramSnapshot {
                    count: 0,
                    sum: 0,
                    min: 0,
                    max: 0,
                    buckets: vec![],
                },
            ),
            (
                "sas_request_ns{tag=\"query\"}".into(),
                HistogramSnapshot {
                    count: 5,
                    sum: 5_000_000,
                    min: 250_000,
                    max: 2_000_000,
                    buckets: vec![(700, 1), (1154, 3), (1217, 1)],
                },
            ),
        ],
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn fixtures() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("metrics_req_v1.sas", encode_request(&Request::Metrics)),
        (
            "metrics_resp_v1.sas",
            encode_response(&Response::Metrics(golden_report())),
        ),
    ]
}

#[test]
fn golden_frames_pin_the_metrics_wire_format() {
    let dir = golden_dir();
    let regen = std::env::var_os("SAS_REGEN_GOLDEN").is_some();
    for (file, bytes) in &fixtures() {
        let path = dir.join(file);
        if regen {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, bytes).expect("write golden file");
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{file}: missing golden file ({e}); see module docs"));
        assert_eq!(
            bytes, &committed,
            "{file}: freshly encoded fixture drifted from the committed frame"
        );
    }
    if !regen {
        let req = decode_request(&std::fs::read(dir.join("metrics_req_v1.sas")).unwrap())
            .expect("committed metrics request decodes");
        assert_eq!(req, Request::Metrics);
        let resp = decode_response(
            &std::fs::read(dir.join("metrics_resp_v1.sas")).unwrap(),
            REQ_METRICS,
        )
        .expect("committed metrics response decodes");
        assert_eq!(resp, Response::Metrics(golden_report()));
    }
    assert!(
        !regen,
        "golden files regenerated; rerun without SAS_REGEN_GOLDEN"
    );
}

#[test]
fn bit_flip_sweep_rejects_every_corruption() {
    for (name, bytes) in fixtures() {
        let decode: fn(&[u8]) -> bool = if name.contains("req") {
            |b| decode_request(b).is_err()
        } else {
            |b| decode_response(b, REQ_METRICS).is_err()
        };
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode(&corrupt),
                "{name}: flipping bit {bit} of {} was not rejected",
                bytes.len() * 8
            );
        }
    }
}

#[test]
fn truncation_sweep_rejects_every_prefix() {
    for (name, bytes) in fixtures() {
        for len in 0..bytes.len() {
            assert!(
                decode_request(&bytes[..len]).is_err()
                    && decode_response(&bytes[..len], REQ_METRICS).is_err(),
                "{name}: {len}-byte prefix was not rejected"
            );
        }
    }
}
